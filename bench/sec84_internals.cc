/**
 * @file
 * Reproduces Section 8.4: BlockHammer's internal behavior on benign
 * workloads — the Bloom-filter false-positive rate and the distribution
 * of delays suffered by mistakenly-delayed activations.
 *
 * Paper result: false-positive rate 0.010% at N_RH=32K rising to only
 * 0.012% at N_RH=1K; delays of 1.7/3.9/7.6 us at P50/P90/P100, all below
 * the theoretical tDelay of 7.7 us.
 */

#include "bench/experiments.hh"
#include "blockhammer/blockhammer.hh"

namespace bh
{

void
benchSec84(BenchContext &ctx)
{
    unsigned n_mixes = ctx.scaled(3);
    auto mixes = makeBenignMixes(n_mixes, 1234);
    const std::vector<std::uint32_t> thresholds = {1024u, 512u, 256u};

    // Sweep cells: (threshold x mix) runs under full BlockHammer.
    std::vector<Json> cells = ctx.runCells(
        "thresholds", thresholds.size() * mixes.size(), [&](std::size_t i) {
            std::uint32_t nrh = thresholds[i / mixes.size()];
            const MixSpec &mix = mixes[i % mixes.size()];
            ExperimentConfig cfg = benchConfig(ctx, "BlockHammer", nrh);
            auto system = buildSystem(cfg, mix);
            system->run(cfg.warmupCycles + cfg.runCycles);
            MemSystem &mem = system->mem();
            // Counters merge across the per-channel BlockHammer
            // instances; each instance's delay distribution contributes
            // its percentile points (tDelay is configuration-derived and
            // identical on every channel).
            std::uint64_t acts = 0, delayed = 0, fps = 0;
            Cycle tdelay = 0;
            Json percentiles = Json::array();
            for (unsigned ch = 0; ch < mem.channels(); ++ch) {
                auto *bh = dynamic_cast<BlockHammer *>(&mem.mitigation(ch));
                if (bh == nullptr)
                    fatal("mechanism is not BlockHammer");
                acts += bh->totalActivations();
                delayed += bh->delayedActivations();
                fps += bh->falsePositiveActivations();
                tdelay = bh->rowBlocker().tDelay();
                const Histogram &h = bh->delayHistogram();
                if (h.count() > 0)
                    for (double p : {10.0, 30.0, 50.0, 70.0, 90.0, 100.0})
                        percentiles.push(h.percentile(p));
            }
            Json cell = Json::object();
            cell["acts"] = acts;
            cell["delayed"] = delayed;
            cell["fps"] = fps;
            cell["tdelay"] = static_cast<std::int64_t>(tdelay);
            cell["delay_percentiles"] = std::move(percentiles);
            return cell;
        });
    if (!ctx.aggregate())
        return;

    TextTable t({"N_RH", "total acts", "delayed", "false pos",
                 "FP rate %", "delay P50 us", "P90 us", "P100 us",
                 "tDelay us"});
    Json out = Json::object();
    auto us = [](double c) { return cyclesToNs(static_cast<Cycle>(c)) / 1000.0; };
    for (std::size_t n = 0; n < thresholds.size(); ++n) {
        std::uint64_t acts = 0, delayed = 0, fps = 0;
        Cycle tdelay = 0;
        Histogram all_delays;
        for (std::size_t x = 0; x < mixes.size(); ++x) {
            const Json &c = cells[n * mixes.size() + x];
            acts += static_cast<std::uint64_t>(cellInt(c, "acts"));
            delayed += static_cast<std::uint64_t>(cellInt(c, "delayed"));
            fps += static_cast<std::uint64_t>(cellInt(c, "fps"));
            tdelay = static_cast<Cycle>(cellInt(c, "tdelay"));
            if (const Json *ps = c.find("delay_percentiles"))
                for (std::size_t v = 0; v < ps->size(); ++v)
                    all_delays.add(ps->at(v).asInt());
        }
        double fp_rate = 100.0 * ratio(static_cast<double>(fps),
                                       static_cast<double>(acts));
        Json row = Json::object();
        row["total_acts"] = acts;
        row["delayed"] = delayed;
        row["false_positives"] = fps;
        row["fp_rate_pct"] = fp_rate;
        row["delay_p50_us"] = us(static_cast<double>(all_delays.percentile(50)));
        row["delay_p90_us"] = us(static_cast<double>(all_delays.percentile(90)));
        row["delay_p100_us"] = us(static_cast<double>(all_delays.max()));
        row["tdelay_us"] = us(static_cast<double>(tdelay));
        out[strfmt("%u", thresholds[n])] = row;
        t.addRow({strfmt("%u", thresholds[n]),
                  strfmt("%llu", static_cast<unsigned long long>(acts)),
                  strfmt("%llu", static_cast<unsigned long long>(delayed)),
                  strfmt("%llu", static_cast<unsigned long long>(fps)),
                  TextTable::num(fp_rate, 4),
                  TextTable::num(us(static_cast<double>(
                      all_delays.percentile(50))), 2),
                  TextTable::num(us(static_cast<double>(
                      all_delays.percentile(90))), 2),
                  TextTable::num(us(static_cast<double>(all_delays.max())), 2),
                  TextTable::num(us(static_cast<double>(tdelay)), 2)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper shape: FP rate stays ~0.01%% at the thresholds where\n"
                "delays occur at all. Median delays stay below the tDelay\n"
                "bound; the tail exceeds it because a row that becomes safe\n"
                "again must still win FR-FCFS scheduling under load.\n\n");
    ctx.result["thresholds"] = out;
}

} // namespace bh
