/**
 * @file
 * Reproduces Section 8.4: BlockHammer's internal behavior on benign
 * workloads — the Bloom-filter false-positive rate and the distribution
 * of delays suffered by mistakenly-delayed activations.
 *
 * Paper result: false-positive rate 0.010% at N_RH=32K rising to only
 * 0.012% at N_RH=1K; delays of 1.7/3.9/7.6 us at P50/P90/P100, all below
 * the theoretical tDelay of 7.7 us.
 */

#include "bench/bench_util.hh"
#include "blockhammer/blockhammer.hh"

using namespace bh;

int
main()
{
    setVerbose(false);
    benchHeader("Section 8.4: false positives and delay distribution",
                "benign mixes under full-functional BlockHammer");

    auto n_mixes = static_cast<unsigned>(3 * benchScale());
    auto mixes = makeBenignMixes(n_mixes, 1234);

    TextTable t({"N_RH", "total acts", "delayed", "false pos",
                 "FP rate %", "delay P50 us", "P90 us", "P100 us",
                 "tDelay us"});
    for (std::uint32_t nrh : {1024u, 512u, 256u}) {
        std::uint64_t acts = 0, delayed = 0, fps = 0;
        Histogram all_delays;
        Cycle tdelay = 0;
        for (const auto &mix : mixes) {
            ExperimentConfig cfg = benchConfig("BlockHammer", nrh);
            auto system = buildSystem(cfg, mix);
            system->run(cfg.warmupCycles + cfg.runCycles);
            auto *bh =
                dynamic_cast<BlockHammer *>(&system->mem().mitigation());
            acts += bh->totalActivations();
            delayed += bh->delayedActivations();
            fps += bh->falsePositiveActivations();
            tdelay = bh->rowBlocker().tDelay();
            const Histogram &h = bh->delayHistogram();
            // Merge percentile inputs by re-sampling the summary points.
            for (double p : {10.0, 30.0, 50.0, 70.0, 90.0, 100.0})
                if (h.count() > 0)
                    all_delays.add(h.percentile(p));
        }
        auto us = [](Cycle c) { return cyclesToNs(c) / 1000.0; };
        t.addRow({strfmt("%u", nrh),
                  strfmt("%llu", static_cast<unsigned long long>(acts)),
                  strfmt("%llu", static_cast<unsigned long long>(delayed)),
                  strfmt("%llu", static_cast<unsigned long long>(fps)),
                  TextTable::num(100.0 * ratio(
                      static_cast<double>(fps),
                      static_cast<double>(acts)), 4),
                  TextTable::num(us(all_delays.percentile(50)), 2),
                  TextTable::num(us(all_delays.percentile(90)), 2),
                  TextTable::num(us(all_delays.max()), 2),
                  TextTable::num(us(tdelay), 2)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper shape: FP rate stays ~0.01%% at the thresholds where\n"
                "delays occur at all. Median delays stay below the tDelay\n"
                "bound; the tail exceeds it because a row that becomes safe\n"
                "again must still win FR-FCFS scheduling under load.\n\n");
    return 0;
}
