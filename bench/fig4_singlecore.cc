/**
 * @file
 * Reproduces Figure 4: execution time and DRAM energy of benign
 * single-core applications (grouped L/M/H by RBCPKI) under each
 * mitigation mechanism, normalized to the unprotected baseline.
 *
 * Paper shape: all mechanisms ~1.00 for L/M; PARA and MRLoc show small
 * overheads on H apps; BlockHammer shows none.
 */

#include <map>

#include "bench/bench_util.hh"
#include "workloads/catalog.hh"

using namespace bh;

int
main()
{
    setVerbose(false);
    benchHeader("Figure 4: single-core normalized execution time / energy",
                "Figure 4 (Section 8.1), 30 benign apps x 7 mechanisms");

    // App coverage grows with BH_SCALE (2 per category by default).
    unsigned apps_per_cat = std::min<unsigned>(
        12, static_cast<unsigned>(2 * benchScale()));

    ExperimentConfig base_cfg = benchConfig("Baseline");
    base_cfg.threads = 1;

    std::vector<std::string> apps;
    for (char cat : {'L', 'M', 'H'}) {
        auto names = appsInCategory(cat);
        for (unsigned i = 0; i < std::min<std::size_t>(apps_per_cat,
                                                       names.size()); ++i)
            apps.push_back(names[i * names.size() /
                                 std::min<std::size_t>(apps_per_cat,
                                                       names.size())]);
    }

    // Per (category, mechanism): normalized exec time & energy samples.
    std::map<std::string, std::map<char, std::vector<double>>> time_norm;
    std::map<std::string, std::map<char, std::vector<double>>> energy_norm;

    for (const auto &app : apps) {
        char cat = findApp(app)->category;
        MixSpec mix;
        mix.name = app;
        mix.apps = {app};

        ExperimentConfig cfg = base_cfg;
        RunResult base = runExperiment(cfg, mix);
        for (const auto &mech : paperMechanisms()) {
            cfg.mechanism = mech;
            RunResult res = runExperiment(cfg, mix);
            // Normalized execution time = baseline IPC / mechanism IPC.
            time_norm[mech][cat].push_back(ratio(base.ipc[0], res.ipc[0]));
            energy_norm[mech][cat].push_back(
                ratio(res.energyJ, base.energyJ));
        }
    }

    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return v.empty() ? 0.0 : s / static_cast<double>(v.size());
    };

    std::printf("--- normalized execution time (1.00 = baseline) ---\n");
    TextTable tt({"mechanism", "L", "M", "H"});
    for (const auto &mech : paperMechanisms()) {
        tt.addRow({mech,
                   TextTable::num(mean(time_norm[mech]['L']), 3),
                   TextTable::num(mean(time_norm[mech]['M']), 3),
                   TextTable::num(mean(time_norm[mech]['H']), 3)});
    }
    std::printf("%s\n", tt.render().c_str());

    std::printf("--- normalized DRAM energy (1.00 = baseline) ---\n");
    TextTable te({"mechanism", "L", "M", "H"});
    for (const auto &mech : paperMechanisms()) {
        te.addRow({mech,
                   TextTable::num(mean(energy_norm[mech]['L']), 3),
                   TextTable::num(mean(energy_norm[mech]['M']), 3),
                   TextTable::num(mean(energy_norm[mech]['H']), 3)});
    }
    std::printf("%s\n", te.render().c_str());
    std::printf("Paper shape: BlockHammer ~1.000 everywhere; PARA/MRLoc "
                "up to ~1.008 time and ~1.05 energy on H apps.\n\n");
    return 0;
}
