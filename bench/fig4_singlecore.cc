/**
 * @file
 * Reproduces Figure 4: execution time and DRAM energy of benign
 * single-core applications (grouped L/M/H by RBCPKI) under each
 * mitigation mechanism, normalized to the unprotected baseline.
 *
 * Paper shape: all mechanisms ~1.00 for L/M; PARA and MRLoc show small
 * overheads on H apps; BlockHammer shows none.
 */

#include <map>

#include "bench/experiments.hh"
#include "workloads/catalog.hh"

namespace bh
{

void
benchFig4(BenchContext &ctx)
{
    // App coverage grows with scale (2 per category by default).
    unsigned apps_per_cat = std::min<unsigned>(12, ctx.scaled(2));

    ExperimentConfig base_cfg = benchConfig(ctx, "Baseline");
    base_cfg.threads = 1;

    std::vector<std::string> apps;
    for (char cat : {'L', 'M', 'H'}) {
        auto names = appsInCategory(cat);
        auto take = std::min<std::size_t>(apps_per_cat, names.size());
        for (unsigned i = 0; i < take; ++i)
            apps.push_back(names[i * names.size() / take]);
    }

    // Sweep cells: per app, the baseline run then one run per mechanism
    // (the paper's seven plus the factory zoo, see bench_util.hh).
    const auto &mechs = comparisonMechanisms();
    const std::size_t runs_per_app = 1 + mechs.size();
    std::vector<Json> cells = ctx.runCells(
        "apps", apps.size() * runs_per_app, [&](std::size_t i) {
            ExperimentConfig cfg = base_cfg;
            std::size_t run = i % runs_per_app;
            if (run > 0)
                cfg.mechanism = mechs[run - 1];
            MixSpec mix;
            mix.name = apps[i / runs_per_app];
            mix.apps = {mix.name};
            RunResult res = runExperiment(cfg, mix);
            Json cell = Json::object();
            cell["ipc"] = res.ipc[0];
            cell["energy_j"] = res.energyJ;
            cell["stats"] = res.stats;
            return cell;
        });
    if (!ctx.aggregate())
        return;

    // Per (mechanism, category): normalized exec time & energy samples.
    std::map<std::string, std::map<char, std::vector<double>>> time_norm;
    std::map<std::string, std::map<char, std::vector<double>>> energy_norm;
    Json per_app = Json::object();
    for (std::size_t a = 0; a < apps.size(); ++a) {
        char cat = findApp(apps[a])->category;
        const Json &base = cells[a * runs_per_app];
        Json app_json = Json::object();
        for (std::size_t m = 0; m < mechs.size(); ++m) {
            const Json &res = cells[a * runs_per_app + 1 + m];
            // Normalized execution time = baseline IPC / mechanism IPC.
            double t = ratio(cellNum(base, "ipc"), cellNum(res, "ipc"));
            double e = ratio(cellNum(res, "energy_j"),
                             cellNum(base, "energy_j"));
            time_norm[mechs[m]][cat].push_back(t);
            energy_norm[mechs[m]][cat].push_back(e);
            Json mech_json = Json::object();
            mech_json["time_norm"] = t;
            mech_json["energy_norm"] = e;
            app_json[mechs[m]] = mech_json;
        }
        per_app[apps[a]] = app_json;
    }

    std::printf("--- normalized execution time (1.00 = baseline) ---\n");
    Json time_json = Json::object();
    TextTable tt({"mechanism", "L", "M", "H"});
    for (const auto &mech : mechs) {
        Json row = Json::object();
        for (char cat : {'L', 'M', 'H'})
            row[std::string(1, cat)] = mean(time_norm[mech][cat]);
        time_json[mech] = row;
        tt.addRow({mech,
                   TextTable::num(mean(time_norm[mech]['L']), 3),
                   TextTable::num(mean(time_norm[mech]['M']), 3),
                   TextTable::num(mean(time_norm[mech]['H']), 3)});
    }
    std::printf("%s\n", tt.render().c_str());

    std::printf("--- normalized DRAM energy (1.00 = baseline) ---\n");
    Json energy_json = Json::object();
    TextTable te({"mechanism", "L", "M", "H"});
    for (const auto &mech : mechs) {
        Json row = Json::object();
        for (char cat : {'L', 'M', 'H'})
            row[std::string(1, cat)] = mean(energy_norm[mech][cat]);
        energy_json[mech] = row;
        te.addRow({mech,
                   TextTable::num(mean(energy_norm[mech]['L']), 3),
                   TextTable::num(mean(energy_norm[mech]['M']), 3),
                   TextTable::num(mean(energy_norm[mech]['H']), 3)});
    }
    std::printf("%s\n", te.render().c_str());
    std::printf("Paper shape: BlockHammer ~1.000 everywhere; PARA/MRLoc "
                "up to ~1.008 time and ~1.05 energy on H apps.\n\n");

    ctx.result["time_norm"] = time_json;
    ctx.result["energy_norm"] = energy_json;
    ctx.result["per_app"] = per_app;
}

} // namespace bh
