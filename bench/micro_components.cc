/**
 * @file
 * Microbenchmarks (google-benchmark) of the latency-critical components,
 * supporting Section 6.2's claim that BlockHammer's safety query is fast
 * enough to hide behind DRAM access latency: in hardware the query takes
 * 0.97 ns; here we show the simulated data structures are O(hashes) and
 * O(1), independent of tracked-row count.
 */

#include <benchmark/benchmark.h>

#include "blockhammer/blockhammer.hh"
#include "dram/address_map.hh"
#include "mem/controller.hh"
#include "mitigations/factory.hh"

namespace
{

using namespace bh;

BlockHammerConfig
benchBhConfig()
{
    auto cfg = BlockHammerConfig::forThreshold(32768, DramTimings::ddr4());
    cfg.seed = 7;
    return cfg;
}

void
BM_H3Hash(benchmark::State &state)
{
    H3Hash h(10, 3);
    std::uint64_t key = 0x12345;
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.hash(key));
        key = key * 6364136223846793005ull + 1;
    }
}
BENCHMARK(BM_H3Hash);

void
BM_CbfInsert(benchmark::State &state)
{
    CountingBloomFilter cbf(benchBhConfig().cbf, 1);
    std::uint64_t key = 1;
    for (auto _ : state) {
        cbf.insert(key);
        key = key * 6364136223846793005ull + 3;
    }
}
BENCHMARK(BM_CbfInsert);

void
BM_CbfCount(benchmark::State &state)
{
    CountingBloomFilter cbf(benchBhConfig().cbf, 1);
    for (std::uint64_t k = 0; k < 4096; ++k)
        cbf.insert(k);
    std::uint64_t key = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cbf.count(key));
        key = (key + 97) % 8192;
    }
}
BENCHMARK(BM_CbfCount);

void
BM_RowBlockerSafetyQuery(benchmark::State &state)
{
    // The "is this ACT RowHammer-safe?" query of Figure 2, with the
    // history buffer populated to the paper's occupancy.
    RowBlocker rb(benchBhConfig());
    Cycle now = 0;
    for (int i = 0; i < 500; ++i) {
        rb.onActivate(i % 16, static_cast<RowId>(i * 13), now);
        now += 30;
    }
    RowId row = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rb.isSafe(0, row, now));
        row = (row + 1) % 65536;
    }
}
BENCHMARK(BM_RowBlockerSafetyQuery);

void
BM_HistoryBufferLookup(benchmark::State &state)
{
    HistoryBuffer hb(891, 24864);
    Cycle now = 0;
    for (int i = 0; i < 800; ++i) {
        hb.insert(static_cast<std::uint64_t>(i), now);
        now += 28;
    }
    std::uint64_t key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hb.recentlyActivated(key, now));
        key = (key + 7) % 2048;
    }
}
BENCHMARK(BM_HistoryBufferLookup);

void
BM_AddressDecode(benchmark::State &state)
{
    AddressMapper mapper(DramOrg::paperConfig(), MapScheme::kMop);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.decode(addr));
        addr += 4096 + 64;
    }
}
BENCHMARK(BM_AddressDecode);

/** Per-ACT bookkeeping cost of each mitigation mechanism. */
void
BM_MechanismOnActivate(benchmark::State &state, const std::string &name)
{
    MitigationSettings settings;
    settings.seed = 11;
    auto mech = makeMitigation(name, settings);
    // Mechanisms that schedule victim refreshes need a controller; use a
    // throwaway device + controller.
    static DramTimings timings = DramTimings::ddr4();
    static DramDevice dev(DramOrg::paperConfig(), timings);
    static NullMitigation null_mitig;
    static MemController ctrl(dev, ControllerConfig{}, null_mitig, nullptr,
                              nullptr);
    mech->setController(&ctrl);
    Cycle now = 0;
    RowId row = 0;
    for (auto _ : state) {
        mech->onActivate(static_cast<unsigned>(row % 16),
                         row % 65536, 0, now);
        row += 977;
        now += 30;
    }
}
BENCHMARK_CAPTURE(BM_MechanismOnActivate, PARA, "PARA");
BENCHMARK_CAPTURE(BM_MechanismOnActivate, PRoHIT, "PRoHIT");
BENCHMARK_CAPTURE(BM_MechanismOnActivate, MRLoc, "MRLoc");
BENCHMARK_CAPTURE(BM_MechanismOnActivate, CBT, "CBT");
BENCHMARK_CAPTURE(BM_MechanismOnActivate, TWiCe, "TWiCe");
BENCHMARK_CAPTURE(BM_MechanismOnActivate, Graphene, "Graphene");
BENCHMARK_CAPTURE(BM_MechanismOnActivate, BlockHammer, "BlockHammer");

} // namespace

BENCHMARK_MAIN();
