/**
 * @file
 * Microbenchmarks of the latency-critical components, supporting Section
 * 6.2's claim that BlockHammer's safety query is fast enough to hide
 * behind DRAM access latency: in hardware the query takes 0.97 ns; here
 * we show the simulated data structures are O(hashes) and O(1),
 * independent of tracked-row count.
 *
 * Self-timed (no google-benchmark dependency): each component runs a
 * fixed, scale-derived iteration count. Wall-clock ns/op goes to stdout
 * only; the JSON keeps the deterministic fields (iterations and a result
 * checksum), so BENCH_micro.json is byte-stable across runs and job
 * counts even though timings jitter.
 */

#include <chrono>

#include "bench/experiments.hh"
#include "blockhammer/blockhammer.hh"
#include "dram/address_map.hh"
#include "mem/controller.hh"
#include "mitigations/factory.hh"

namespace bh
{

namespace
{

BlockHammerConfig
microBhConfig()
{
    auto cfg = BlockHammerConfig::forThreshold(32768, DramTimings::ddr4());
    cfg.seed = 7;
    return cfg;
}

struct MicroResult
{
    std::string name;
    std::uint64_t iterations;
    std::uint64_t checksum;     ///< fold of all computed values
    double nsPerOp;
};

/**
 * Optimization barrier for ops whose result is their side effect on
 * `obj` (inserts, onActivate): forces the compiler to assume the
 * object's memory is read, so the op cannot be elided even under LTO.
 */
template <typename T>
inline void
clobber(T &obj)
{
    asm volatile("" : : "r"(&obj) : "memory");
}

/**
 * Time `op(i)` over `iters` iterations. The op returns a value that is
 * folded into the checksum — both the optimization barrier and the
 * deterministic JSON fingerprint. Templated on the callable so the
 * timed loop body inlines (no per-iteration std::function dispatch).
 */
template <typename Op>
MicroResult
timeLoop(const std::string &name, std::uint64_t iters, const Op &op)
{
    std::uint64_t checksum = 0;
    // Short warmup round to fault in caches before the timed loop.
    for (std::uint64_t i = 0; i < iters / 16 + 1; ++i)
        checksum ^= op(i);
    checksum = 0;
    // bh-lint: allow(nondet) microbenchmark timing harness; ns/op is reported as timing, not simulation output
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i)
        checksum = (checksum * 1099511628211ull) ^ op(i);
    // bh-lint: allow(nondet) microbenchmark timing harness; ns/op is reported as timing, not simulation output
    auto t1 = std::chrono::steady_clock::now();
    double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    return {name, iters, checksum, ns / static_cast<double>(iters)};
}

} // namespace

void
benchMicro(BenchContext &ctx)
{
    // Self-timed, no simulation cells: every shard (and a bh_collect
    // replay) re-times the loops; only the deterministic iteration
    // counts and checksums reach the JSON, so outputs still merge
    // byte-identically.
    if (!ctx.aggregate())
        return;
    const std::uint64_t iters =
        static_cast<std::uint64_t>(200'000 * ctx.scale);
    std::vector<MicroResult> results;

    {
        H3Hash h(10, 3);
        std::uint64_t key = 0x12345;
        results.push_back(timeLoop("h3_hash", iters, [&](std::uint64_t) {
            std::uint64_t v = h.hash(key);
            key = key * 6364136223846793005ull + 1;
            return v;
        }));
    }
    {
        CountingBloomFilter cbf(microBhConfig().cbf, 1);
        std::uint64_t key = 1;
        results.push_back(timeLoop("cbf_insert", iters, [&](std::uint64_t) {
            cbf.insert(key);
            clobber(cbf);
            key = key * 6364136223846793005ull + 3;
            return key;
        }));
    }
    {
        CountingBloomFilter cbf(microBhConfig().cbf, 1);
        for (std::uint64_t k = 0; k < 4096; ++k)
            cbf.insert(k);
        std::uint64_t key = 1;
        results.push_back(timeLoop("cbf_count", iters, [&](std::uint64_t) {
            std::uint64_t v = cbf.count(key);
            key = (key + 97) % 8192;
            return v;
        }));
    }
    {
        // The "is this ACT RowHammer-safe?" query of Figure 2, with the
        // history buffer populated to the paper's occupancy.
        RowBlocker rb(microBhConfig());
        Cycle now = 0;
        for (int i = 0; i < 500; ++i) {
            rb.onActivate(i % 16, static_cast<RowId>(i * 13), now);
            now += 30;
        }
        RowId row = 0;
        results.push_back(
            timeLoop("rowblocker_safety_query", iters, [&](std::uint64_t) {
                std::uint64_t v = rb.isSafe(0, row, now);
                row = (row + 1) % 65536;
                return v;
            }));
    }
    {
        HistoryBuffer hb(891, 24864);
        Cycle now = 0;
        for (int i = 0; i < 800; ++i) {
            hb.insert(static_cast<std::uint64_t>(i), now);
            now += 28;
        }
        std::uint64_t key = 0;
        results.push_back(
            timeLoop("history_buffer_lookup", iters, [&](std::uint64_t) {
                std::uint64_t v = hb.recentlyActivated(key, now);
                key = (key + 7) % 2048;
                return v;
            }));
    }
    {
        AddressMapper mapper(DramOrg::paperConfig(), MapScheme::kMop);
        Addr addr = 0;
        results.push_back(
            timeLoop("address_decode", iters, [&](std::uint64_t) {
                auto loc = mapper.decode(addr);
                addr += 4096 + 64;
                return static_cast<std::uint64_t>(loc.row) ^ loc.bank;
            }));
    }

    // Per-ACT bookkeeping cost of each mitigation mechanism. Mechanisms
    // that schedule victim refreshes need a controller; use a throwaway
    // device + controller.
    DramTimings timings = DramTimings::ddr4();
    DramDevice dev(DramOrg::paperConfig(), timings);
    NullMitigation null_mitig;
    MemController ctrl(dev, ControllerConfig{}, null_mitig, nullptr,
                       nullptr);
    for (const auto &mech_name : paperMechanisms()) {
        MitigationSettings settings;
        settings.seed = 11;
        auto mech = makeMitigation(mech_name, settings);
        mech->setController(&ctrl);
        Cycle now = 0;
        RowId row = 0;
        results.push_back(timeLoop(
            "on_activate_" + mech_name, iters, [&](std::uint64_t) {
                mech->onActivate(static_cast<unsigned>(row % 16),
                                 row % 65536, 0, now);
                clobber(*mech);
                row += 977;
                now += 30;
                return static_cast<std::uint64_t>(row);
            }));
    }

    TextTable t({"component", "iterations", "ns/op", "checksum"});
    Json components = Json::object();
    for (const auto &r : results) {
        Json row = Json::object();
        row["iterations"] = r.iterations;
        row["checksum"] = strfmt("%016llx",
                                 static_cast<unsigned long long>(r.checksum));
        components[r.name] = row;
        t.addRow({r.name, strfmt("%llu",
                                 static_cast<unsigned long long>(r.iterations)),
                  TextTable::num(r.nsPerOp, 1),
                  strfmt("%016llx",
                         static_cast<unsigned long long>(r.checksum))});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Timings are wall-clock and jitter run to run; the JSON\n"
                "records only the deterministic iteration counts and\n"
                "checksums.\n\n");
    ctx.result["components"] = components;
}

} // namespace bh
