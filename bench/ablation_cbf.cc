/**
 * @file
 * Ablation study backing the Section 3.1.3 configuration methodology:
 * how the CBF size and the blacklisting threshold N_BL drive the
 * false-positive rate and the tDelay penalty. The paper chose 1K counters
 * and N_BL = N_RH/4 by exactly this sweep ("reducing the CBF size below
 * 1K significantly increases the false positive rate due to aliasing").
 */

#include "bench/experiments.hh"
#include "blockhammer/blockhammer.hh"

namespace bh
{

namespace
{

/** Run one benign mix under a custom BlockHammer geometry. */
Json
runPoint(const BenchContext &ctx, unsigned cbf_counters,
         std::uint32_t nbl_divisor)
{
    ExperimentConfig cfg = benchConfig(ctx, "BlockHammer", 1024);
    auto mix = makeBenignMixes(1, 5)[0];

    // Build the system manually so we can override the CBF geometry.
    SystemConfig sys_cfg;
    sys_cfg.threads = cfg.threads;
    sys_cfg.mem.timings = cfg.timings();
    sys_cfg.mem.hammer.nRH = cfg.nRH;
    sys_cfg.mem.enableHammerObserver = false;

    auto bh_cfg = BlockHammerConfig::forThreshold(
        cfg.nRH, cfg.timings(), 16, cfg.threads);
    bh_cfg.cbf.numCounters = cbf_counters;
    bh_cfg.nBL = std::max<std::uint32_t>(2, cfg.nRH / nbl_divisor);
    bh_cfg.cbf.counterMax = bh_cfg.nBL;
    bh_cfg.seed = 3;

    // N_BL = N_RH/2 equals N_RH* under the double-sided blast model:
    // Equation 1 has no positive tDelay there, so the geometry cannot be
    // built (that is the sweep's data point).
    Json cell = Json::object();
    if (!bh_cfg.feasible()) {
        cell["feasible"] = false;
        return cell;
    }

    auto mech = std::make_unique<BlockHammer>(bh_cfg);
    BlockHammer *bh = mech.get();
    System system(sys_cfg, std::move(mech));
    for (unsigned slot = 0; slot < cfg.threads; ++slot) {
        system.setTrace(slot, makeTrace(mix.apps[slot], slot, cfg.threads,
                                        system.mem().mapper(), cfg.seed));
    }
    system.run(cfg.warmupCycles + cfg.runCycles);

    cell["feasible"] = true;
    cell["fp_rate_pct"] = 100.0 * ratio(
        static_cast<double>(bh->falsePositiveActivations()),
        static_cast<double>(bh->totalActivations()));
    cell["tdelay_us"] = cyclesToNs(bh_cfg.tDelay()) / 1000.0;
    cell["delayed"] = bh->delayedActivations();
    return cell;
}

} // namespace

void
benchAblationCbf(BenchContext &ctx)
{
    const std::vector<unsigned> sizes = {64u, 128u, 256u, 512u, 1024u,
                                         4096u};
    const std::vector<std::uint32_t> divisors = {2u, 4u, 8u, 16u};

    // All sweep points are independent cells: the CBF-size sweep comes
    // first, then the N_BL sweep.
    std::vector<Json> cells = ctx.runCells(
        "sweep", sizes.size() + divisors.size(), [&](std::size_t i) {
            if (i < sizes.size())
                return runPoint(ctx, sizes[i], 4);
            return runPoint(ctx, 1024, divisors[i - sizes.size()]);
        });
    if (!ctx.aggregate())
        return;

    std::printf("--- CBF size sweep (N_BL = N_RH/4) ---\n");
    Json size_sweep = Json::object();
    TextTable t1({"CBF counters", "false-positive rate %", "delayed acts"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const Json &r = cells[i];
        double fp_rate = cellNum(r, "fp_rate_pct");
        auto delayed = static_cast<std::uint64_t>(cellInt(r, "delayed"));
        Json row = Json::object();
        row["fp_rate_pct"] = fp_rate;
        row["delayed_acts"] = delayed;
        size_sweep[strfmt("%u", sizes[i])] = row;
        t1.addRow({strfmt("%u", sizes[i]), TextTable::num(fp_rate, 4),
                   strfmt("%llu",
                          static_cast<unsigned long long>(delayed))});
    }
    std::printf("%s\n", t1.render().c_str());
    ctx.result["cbf_size_sweep"] = size_sweep;

    std::printf("--- N_BL sweep (CBF = 1K counters) ---\n");
    Json nbl_sweep = Json::object();
    TextTable t2({"N_BL", "tDelay us (penalty)", "false-positive rate %"});
    for (std::size_t i = 0; i < divisors.size(); ++i) {
        const Json &r = cells[sizes.size() + i];
        bool feasible = r.find("feasible") &&
            r.find("feasible")->asBool();
        Json row = Json::object();
        row["feasible"] = feasible;
        if (feasible) {
            row["tdelay_us"] = cellNum(r, "tdelay_us");
            row["fp_rate_pct"] = cellNum(r, "fp_rate_pct");
        }
        nbl_sweep[strfmt("nrh_div_%u", divisors[i])] = row;
        t2.addRow({strfmt("N_RH/%u", divisors[i]),
                   feasible ? TextTable::num(cellNum(r, "tdelay_us"), 2)
                            : "infeasible",
                   feasible ? TextTable::num(cellNum(r, "fp_rate_pct"), 4)
                            : "-"});
    }
    std::printf("%s\n", t2.render().c_str());
    ctx.result["nbl_sweep"] = nbl_sweep;

    std::printf("Expected: false positives fall sharply once the CBF has\n"
                ">= 1K counters; smaller N_BL raises the blacklisting\n"
                "sensitivity while lowering the tDelay penalty.\n\n");
}

} // namespace bh
