/**
 * @file
 * Ablation study backing the Section 3.1.3 configuration methodology:
 * how the CBF size and the blacklisting threshold N_BL drive the
 * false-positive rate and the tDelay penalty. The paper chose 1K counters
 * and N_BL = N_RH/4 by exactly this sweep ("reducing the CBF size below
 * 1K significantly increases the false positive rate due to aliasing").
 */

#include "bench/bench_util.hh"
#include "blockhammer/blockhammer.hh"

using namespace bh;

namespace
{

/** Run one benign mix under a custom BlockHammer geometry. */
struct AblationResult
{
    double fpRatePct;
    double tdelayUs;
    std::uint64_t delayed;
};

AblationResult
runPoint(unsigned cbf_counters, std::uint32_t nbl_divisor)
{
    ExperimentConfig cfg = benchConfig("BlockHammer", 1024);
    auto mix = makeBenignMixes(1, 5)[0];

    // Build the system manually so we can override the CBF geometry.
    SystemConfig sys_cfg;
    sys_cfg.threads = cfg.threads;
    sys_cfg.mem.timings = cfg.timings();
    sys_cfg.mem.hammer.nRH = cfg.nRH;
    sys_cfg.mem.enableHammerObserver = false;

    auto bh_cfg = BlockHammerConfig::forThreshold(
        cfg.nRH, cfg.timings(), 16, cfg.threads);
    bh_cfg.cbf.numCounters = cbf_counters;
    bh_cfg.nBL = std::max<std::uint32_t>(2, cfg.nRH / nbl_divisor);
    bh_cfg.cbf.counterMax = bh_cfg.nBL;
    bh_cfg.seed = 3;

    auto mech = std::make_unique<BlockHammer>(bh_cfg);
    BlockHammer *bh = mech.get();
    System system(sys_cfg, std::move(mech));
    for (unsigned slot = 0; slot < cfg.threads; ++slot) {
        system.setTrace(slot, makeTrace(mix.apps[slot], slot, cfg.threads,
                                        system.mem().mapper(), cfg.seed));
    }
    system.run(cfg.warmupCycles + cfg.runCycles);

    AblationResult r;
    r.fpRatePct = 100.0 * ratio(
        static_cast<double>(bh->falsePositiveActivations()),
        static_cast<double>(bh->totalActivations()));
    r.tdelayUs = cyclesToNs(bh_cfg.tDelay()) / 1000.0;
    r.delayed = bh->delayedActivations();
    return r;
}

} // namespace

int
main()
{
    setVerbose(false);
    benchHeader("Ablation: CBF size and N_BL selection (Section 3.1.3)",
                "design-choice sweep behind Table 1's CBF=1K, N_BL=N_RH/4");

    std::printf("--- CBF size sweep (N_BL = N_RH/4) ---\n");
    TextTable t1({"CBF counters", "false-positive rate %", "delayed acts"});
    for (unsigned size : {64u, 128u, 256u, 512u, 1024u, 4096u}) {
        AblationResult r = runPoint(size, 4);
        t1.addRow({strfmt("%u", size), TextTable::num(r.fpRatePct, 4),
                   strfmt("%llu",
                          static_cast<unsigned long long>(r.delayed))});
    }
    std::printf("%s\n", t1.render().c_str());

    std::printf("--- N_BL sweep (CBF = 1K counters) ---\n");
    TextTable t2({"N_BL", "tDelay us (penalty)", "false-positive rate %"});
    for (std::uint32_t divisor : {2u, 4u, 8u, 16u}) {
        AblationResult r = runPoint(1024, divisor);
        t2.addRow({strfmt("N_RH/%u", divisor),
                   TextTable::num(r.tdelayUs, 2),
                   TextTable::num(r.fpRatePct, 4)});
    }
    std::printf("%s\n", t2.render().c_str());

    std::printf("Expected: false positives fall sharply once the CBF has\n"
                ">= 1K counters; smaller N_BL raises the blacklisting\n"
                "sensitivity while lowering the tDelay penalty.\n\n");
    return 0;
}
