/**
 * @file
 * Shared helpers for the registered bh_bench experiments.
 *
 * Every experiment reproduces one paper table/figure: it prints an ASCII
 * table to stdout and fills BenchContext::result with the same numbers in
 * machine-readable form (written as BENCH_<name>.json by the driver).
 *
 * Runs are time-compressed by default (see DESIGN.md): the context's
 * scale factor (CLI --scale, default from the BH_SCALE environment
 * variable) multiplies simulated cycles and workload counts for
 * higher-fidelity runs, e.g. `bh_bench --scale 4 fig5`.
 *
 * Sweep cells go through BenchContext::runCells, which assigns every
 * cell a global index in the experiment's deterministic cell space.
 * That one entry point supports distribution: `bh_bench --shard i/n`
 * runs only the cells a shard owns (writing a partial report of raw
 * cell payloads), `bh_collect merge` replays an experiment's
 * aggregation over payloads collected from N shards, and `--list`
 * enumerates the cell space without simulating anything.
 */

#ifndef BH_BENCH_BENCH_UTIL_HH
#define BH_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

namespace bh
{

/** Default scale: the BH_SCALE env var (>= 0.1), 1.0 when unset. */
inline double
benchScale()
{
    const char *s = std::getenv("BH_SCALE");
    if (!s)
        return 1.0;
    double v = std::atof(s);
    return v >= 0.1 ? v : 1.0;
}

/** Deterministic 1-of-n partition of the global cell index space. */
struct ShardSpec
{
    unsigned index = 0;
    unsigned count = 1;
};

/** True when shard `spec` owns global cell `cell` (round-robin). */
inline bool
shardOwns(const ShardSpec &spec, std::uint64_t cell)
{
    return cell % spec.count == spec.index;
}

/**
 * Execution context handed to every registered experiment. Experiments
 * parallelize their independent sweep cells through `runner` and must
 * produce results that do not depend on the worker count (collect by
 * cell index, seed by cell index — see Runner's determinism contract).
 *
 * Experiment contract for sharding (see runCells): declare every sweep
 * cell through runCells — cell payloads must be deterministic JSON
 * (wall-clock readings go to stdout only) and carry everything the
 * aggregation step reads — then gate all aggregation (ASCII tables and
 * ctx.result fields) behind `if (!ctx.aggregate()) return;`. Analytic
 * experiments with no simulation cells just place the gate at the top.
 */
struct BenchContext
{
    /** How runCells treats the declared cells. */
    enum class CellMode
    {
        Run,        ///< execute the cells this shard owns
        Enumerate,  ///< count cells only, execute nothing (--list)
        Replay      ///< take payloads from `replayCells` (bh_collect)
    };

    double scale = 1.0;         ///< fidelity multiplier (cycles, mix counts)
    Runner *runner = nullptr;   ///< shared pool; set by the driver
    SkipMode skip = SkipMode::kEventSkip;   ///< bh_bench --skip MODE
    unsigned channels = 1;      ///< DRAM channels per simulated system
    unsigned channelThreads = 1;    ///< lane workers per cell (no effect
                                    ///< on results, byte-identical)
    /**
     * Attack-pattern filter (bh_bench --attack NAME): experiments that
     * sweep the attack catalog (secsweep) keep only patterns whose name
     * contains this substring. Part of the grid identity: the manifest
     * records it and the fingerprint folds it in, so differently
     * filtered runs can never merge.
     */
    std::string attackFilter;
    Json result = Json::object();   ///< machine-readable experiment output

    CellMode mode = CellMode::Run;
    ShardSpec shard;                ///< partition for CellMode::Run
    const Json *replayCells = nullptr;  ///< payload source for Replay
    /**
     * Resume filter: global cell indices already covered by existing
     * shard files (bh_bench --resume). Owned cells in this set are not
     * re-run; the partial output holds only the previously missing
     * cells, ready for bh_collect merge.
     */
    const std::set<std::uint64_t> *resumeCovered = nullptr;

    Json cells = Json::object();    ///< recorded payloads by global index
    std::uint64_t nextCell = 0;     ///< next unassigned global cell index
    std::uint64_t cellsRun = 0;     ///< payloads recorded in this run

    /** One runCells block, for the run manifest. */
    struct CellPhase
    {
        std::string label;
        std::uint64_t firstCell = 0;
        std::uint64_t count = 0;
    };
    std::vector<CellPhase> phases;

    /**
     * Self-profile of one executed cell: wall-clock spent in fn() and
     * simulated cycles covered (simCyclesThisThread delta). Filled by
     * runCells in Run mode only, keyed by global cell index; the driver
     * writes it as BENCH_perf.json — never into BENCH_<name>.json, whose
     * bytes must not depend on host speed.
     */
    struct CellPerf
    {
        double wallS = 0.0;
        std::uint64_t simCycles = 0;
    };
    std::map<std::uint64_t, CellPerf> cellPerf;

    /** Scale a count, keeping at least `floor` so sweeps never go empty. */
    unsigned
    scaled(unsigned base, unsigned floor = 1) const
    {
        return std::max(floor, static_cast<unsigned>(base * scale));
    }

    /**
     * Run one block of `n` sweep cells through the pool and return their
     * payloads indexed 0..n-1 (block-local). The block claims global
     * cell indices [nextCell, nextCell + n). Unowned cells (sharded
     * runs) and unexecuted cells (Enumerate) come back as JSON null;
     * Replay returns every payload from the merged shard files without
     * simulating. Payloads must be non-null deterministic JSON.
     */
    std::vector<Json> runCells(const std::string &label, std::size_t n,
                               const std::function<Json(std::size_t)> &fn);

    /**
     * False when aggregation must be skipped: this is a sharded partial
     * run of a cell experiment (payloads for other shards are missing)
     * or a cell enumeration. Experiments return immediately when false.
     */
    bool
    aggregate() const
    {
        if (mode == CellMode::Enumerate)
            return false;
        if (mode == CellMode::Replay)
            return true;
        if (resumeCovered && nextCell > 0)
            return false;   // partial by construction: merge to aggregate
        return shard.count == 1 || nextCell == 0;
    }

    /** True when this run executes the full cell grid itself. */
    bool
    executingAllCells() const
    {
        // A resume filter means some cells are already on disk: warm-up
        // over the full app set would simulate alone-runs the remaining
        // cells never read (pathological for one-cell farm leases).
        return mode == CellMode::Run && shard.count == 1 && !resumeCovered;
    }
};

/**
 * Refresh-window multiplier for a scale factor. At scale <= 1 the
 * compressed 0.5 ms window is kept (CI smoke runs and the golden-gated
 * scale-1 grids are byte-stable), while scale > 1 grows the window — and
 * the RowHammer thresholds with it — back toward the paper's operating
 * point: tREFW = min(scale, 64) ms, so `--scale 8` simulates >= 8 ms
 * windows and `--scale 64` reaches the paper's full 64 ms. The threshold
 * multiplier saturates at 32x, where the default N_RH = 1024 cell reaches
 * the paper's N_RH = 32K.
 */
inline double
windowMultiplier(double scale)
{
    if (scale <= 1.0)
        return 1.0;
    return std::min(2.0 * scale, 128.0);
}

/** Standard compressed experiment configuration used by the experiments. */
inline ExperimentConfig
benchConfig(const BenchContext &ctx, const std::string &mechanism,
            std::uint32_t n_rh = 1024)
{
    double wmul = windowMultiplier(ctx.scale);
    ExperimentConfig cfg;
    cfg.mechanism = mechanism;
    cfg.nRH = static_cast<std::uint32_t>(
        n_rh * std::min(wmul, 32.0));
    cfg.refwMs = 0.5 * wmul;
    cfg.warmupCycles = static_cast<Cycle>(600'000 * ctx.scale);
    cfg.runCycles = static_cast<Cycle>(1'600'000 * ctx.scale);
    cfg.threads = 8;
    cfg.skip = ctx.skip;
    cfg.channels = ctx.channels;
    cfg.channelThreads = ctx.channelThreads;
    cfg.attack.numBanks = 16;
    return cfg;
}

/**
 * Security-verification configuration shared by secsweep and the fuzz
 * red-team search: smaller N_RH and window than benchConfig so
 * violations (and BlockHammer's countermeasures) unfold within a short
 * measurement window; the oracle is on, and the margin covers the whole
 * run (warmup included — an attack does not wait for measurement to
 * start). Both experiments and the regression-replay tests must build
 * cells from this one helper, so a pattern found by the fuzzer replays
 * under *exactly* the conditions it was found under.
 */
inline ExperimentConfig
securityConfig(const BenchContext &ctx, const std::string &mechanism,
               unsigned channels)
{
    double wmul = windowMultiplier(ctx.scale);
    ExperimentConfig cfg;
    cfg.mechanism = mechanism;
    // N_RH 128 (compressed) keeps the threshold well inside the ACT
    // budget a 0.25 ms window physically admits, so mechanisms that
    // merely *slow* an attack as a bandwidth side effect of their
    // victim refreshes (PARA, MRLoc) still show their margin violation
    // instead of hiding behind the refresh overhead. Must stay 4 x a
    // power of two: BlockHammer's Table 7 CBF sizing (2^21 / N_BL)
    // requires a power-of-two filter.
    cfg.nRH = static_cast<std::uint32_t>(128 * std::min(wmul, 32.0));
    cfg.refwMs = 0.25 * wmul;
    cfg.warmupCycles = static_cast<Cycle>(200'000 * ctx.scale);
    cfg.runCycles = static_cast<Cycle>(1'600'000 * ctx.scale);
    cfg.threads = 4;
    cfg.skip = ctx.skip;
    cfg.channels = channels;
    cfg.channelThreads = ctx.channelThreads;
    cfg.securityOracle = true;
    return cfg;
}

/**
 * The figure-grid comparison set: the paper's seven mechanisms in
 * figure order, then the factory's zoo additions. Derived from the
 * factory (never enumerated by hand) so a newly registered mechanism
 * cannot be silently skipped by a sweep; the zoo appends *after* the
 * frozen paper set so pre-zoo cell indices — and the CI shard numbers
 * that name them — stay stable.
 */
inline const std::vector<std::string> &
comparisonMechanisms()
{
    static const std::vector<std::string> mechs = [] {
        std::vector<std::string> v = paperMechanisms();
        for (const auto &m : zooMechanisms())
            v.push_back(m);
        return v;
    }();
    return mechs;
}

/**
 * Security-sweep mechanism set (secsweep, fuzz, and their CI verdict
 * gates): the unmitigated Baseline reference first, then every
 * compared mechanism. Same factory-derived coverage guarantee as
 * comparisonMechanisms().
 */
inline const std::vector<std::string> &
securityMechanisms()
{
    static const std::vector<std::string> mechs = [] {
        std::vector<std::string> v = {"Baseline"};
        for (const auto &m : comparisonMechanisms())
            v.push_back(m);
        return v;
    }();
    return mechs;
}

/** Benign co-runners of every security-verification mix. */
inline const std::vector<std::string> &
securityBenignApps()
{
    // Three memory-heavy benign threads keep the controller queues
    // realistic (an idle system would hand the attacker an
    // unrealistically clean ACT pipeline).
    static const std::vector<std::string> apps = {
        "429.mcf", "462.libquantum", "473.astar"};
    return apps;
}

/** Security-verification mix: one attacking app + the benign trio. */
inline MixSpec
securityMix(const std::string &attack_app, const std::string &name)
{
    MixSpec mix;
    mix.name = name;
    mix.apps = {attack_app};
    for (const auto &app : securityBenignApps())
        mix.apps.push_back(app);
    return mix;
}

/** Print an experiment header naming the paper artifact being reproduced. */
inline void
benchHeader(const std::string &title, const std::string &paper_ref,
            double scale)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("scale: %.2g (see DESIGN.md, time-compressed eval)\n", scale);
    std::printf("==============================================================\n");
}

/** Safe ratio with 0-guard. */
inline double
ratio(double a, double b)
{
    return b != 0.0 ? a / b : 0.0;
}

/** Numeric field of a cell payload (0 when absent). */
inline double
cellNum(const Json &cell, const char *key)
{
    const Json *v = cell.find(key);
    return v ? v->asDouble() : 0.0;
}

/** Integer field of a cell payload (0 when absent). */
inline std::int64_t
cellInt(const Json &cell, const char *key)
{
    const Json *v = cell.find(key);
    return v ? v->asInt() : 0;
}

/** Arithmetic mean (0 when empty). */
inline double
mean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

/**
 * Pre-compute the alone-run IPC of every benign app in `mixes` through
 * the pool, so later parallel cells hit the aloneIpc memo table instead
 * of redundantly simulating the same alone runs. Skipped unless this
 * run executes the full grid: sharded runs only need the apps of their
 * owned cells (filled on demand through the memo), and Enumerate/Replay
 * never simulate.
 */
inline void
warmAloneIpc(const BenchContext &ctx, const ExperimentConfig &cfg,
             const std::vector<MixSpec> &mixes)
{
    if (!ctx.executingAllCells())
        return;
    std::set<std::string> unique;
    for (const auto &mix : mixes)
        for (const auto &app : mix.apps)
            if (!isAttackApp(app))
                unique.insert(app);
    std::vector<std::string> apps(unique.begin(), unique.end());
    ctx.runner->forEach(apps.size(),
                        [&](std::size_t i) { aloneIpc(cfg, apps[i]); });
}

} // namespace bh

#endif // BH_BENCH_BENCH_UTIL_HH
