/**
 * @file
 * Shared helpers for the registered bh_bench experiments.
 *
 * Every experiment reproduces one paper table/figure: it prints an ASCII
 * table to stdout and fills BenchContext::result with the same numbers in
 * machine-readable form (written as BENCH_<name>.json by the driver).
 *
 * Runs are time-compressed by default (see DESIGN.md): the context's
 * scale factor (CLI --scale, default from the BH_SCALE environment
 * variable) multiplies simulated cycles and workload counts for
 * higher-fidelity runs, e.g. `bh_bench --scale 4 fig5`.
 */

#ifndef BH_BENCH_BENCH_UTIL_HH
#define BH_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

namespace bh
{

/** Default scale: the BH_SCALE env var (>= 0.1), 1.0 when unset. */
inline double
benchScale()
{
    const char *s = std::getenv("BH_SCALE");
    if (!s)
        return 1.0;
    double v = std::atof(s);
    return v >= 0.1 ? v : 1.0;
}

/**
 * Execution context handed to every registered experiment. Experiments
 * parallelize their independent sweep cells through `runner` and must
 * produce results that do not depend on the worker count (collect by
 * cell index, seed by cell index — see Runner's determinism contract).
 */
struct BenchContext
{
    double scale = 1.0;         ///< fidelity multiplier (cycles, mix counts)
    Runner *runner = nullptr;   ///< shared pool; set by the driver
    Json result = Json::object();   ///< machine-readable experiment output

    /** Scale a count, keeping at least `floor` so sweeps never go empty. */
    unsigned
    scaled(unsigned base, unsigned floor = 1) const
    {
        return std::max(floor, static_cast<unsigned>(base * scale));
    }
};

/** Standard compressed experiment configuration used by the experiments. */
inline ExperimentConfig
benchConfig(const BenchContext &ctx, const std::string &mechanism,
            std::uint32_t n_rh = 1024)
{
    ExperimentConfig cfg;
    cfg.mechanism = mechanism;
    cfg.nRH = n_rh;
    cfg.refwMs = 0.5;
    cfg.warmupCycles = static_cast<Cycle>(600'000 * ctx.scale);
    cfg.runCycles = static_cast<Cycle>(1'600'000 * ctx.scale);
    cfg.threads = 8;
    cfg.attack.numBanks = 16;
    return cfg;
}

/** Print an experiment header naming the paper artifact being reproduced. */
inline void
benchHeader(const std::string &title, const std::string &paper_ref,
            double scale)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("scale: %.2g (see DESIGN.md, time-compressed eval)\n", scale);
    std::printf("==============================================================\n");
}

/** Safe ratio with 0-guard. */
inline double
ratio(double a, double b)
{
    return b != 0.0 ? a / b : 0.0;
}

/** Arithmetic mean (0 when empty). */
inline double
mean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

/**
 * Pre-compute the alone-run IPC of every benign app in `mixes` through
 * the pool, so later parallel cells hit the aloneIpc memo table instead
 * of redundantly simulating the same alone runs.
 */
inline void
warmAloneIpc(const BenchContext &ctx, const ExperimentConfig &cfg,
             const std::vector<MixSpec> &mixes)
{
    std::set<std::string> unique;
    for (const auto &mix : mixes)
        for (const auto &app : mix.apps)
            if (app != kAttackAppName)
                unique.insert(app);
    std::vector<std::string> apps(unique.begin(), unique.end());
    ctx.runner->forEach(apps.size(),
                        [&](std::size_t i) { aloneIpc(cfg, apps[i]); });
}

} // namespace bh

#endif // BH_BENCH_BENCH_UTIL_HH
