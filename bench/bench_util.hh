/**
 * @file
 * Shared helpers for the reproduction benches.
 *
 * Every bench prints one paper table/figure as an ASCII table. Runs are
 * time-compressed by default (see DESIGN.md): the BH_SCALE environment
 * variable (default 1) multiplies simulated cycles and workload counts
 * for higher-fidelity runs, e.g. `BH_SCALE=4 ./fig5_multiprog`.
 */

#ifndef BH_BENCH_BENCH_UTIL_HH
#define BH_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/log.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

namespace bh
{

/** BH_SCALE env var (>= 1): scales run length / workload counts. */
inline double
benchScale()
{
    const char *s = std::getenv("BH_SCALE");
    if (!s)
        return 1.0;
    double v = std::atof(s);
    return v >= 0.1 ? v : 1.0;
}

/** Standard compressed experiment configuration used by the benches. */
inline ExperimentConfig
benchConfig(const std::string &mechanism, std::uint32_t n_rh = 1024)
{
    ExperimentConfig cfg;
    cfg.mechanism = mechanism;
    cfg.nRH = n_rh;
    cfg.refwMs = 0.5;
    cfg.warmupCycles = static_cast<Cycle>(600'000 * benchScale());
    cfg.runCycles = static_cast<Cycle>(1'600'000 * benchScale());
    cfg.threads = 8;
    cfg.attack.numBanks = 16;
    return cfg;
}

/** Print a bench header naming the paper artifact being reproduced. */
inline void
benchHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("scale: BH_SCALE=%.2g (see DESIGN.md, time-compressed eval)\n",
                benchScale());
    std::printf("==============================================================\n");
}

/** Safe ratio with 0-guard. */
inline double
ratio(double a, double b)
{
    return b != 0.0 ? a / b : 0.0;
}

} // namespace bh

#endif // BH_BENCH_BENCH_UTIL_HH
