/**
 * @file
 * Reproduces Figure 6: performance and DRAM energy as the RowHammer
 * threshold N_RH shrinks (worsening vulnerability), for the four most
 * scalable mechanisms: PARA, TWiCe (ideal), Graphene, and BlockHammer.
 *
 * Paper shape: with no attack, PARA's overhead explodes at small N_RH
 * (reactive refreshes fire constantly) while TWiCe/Graphene/BlockHammer
 * stay ~1.0; with an attack present, BlockHammer's benefit *grows* as
 * N_RH shrinks (it throttles the attacker earlier and harder).
 */

#include <map>

#include "bench/bench_util.hh"

using namespace bh;

namespace
{

const std::vector<std::string> kMechs = {"PARA", "TWiCe", "Graphene",
                                         "BlockHammer"};

void
runScenario(const char *title, const std::vector<MixSpec> &mixes,
            const std::vector<std::uint32_t> &thresholds)
{
    std::printf("--- %s ---\n", title);
    TextTable t({"N_RH", "mechanism", "norm WS", "norm HS", "norm MaxSlow",
                 "norm Energy"});
    for (std::uint32_t nrh : thresholds) {
        std::map<std::string, std::vector<double>> ws, hs, ms, en;
        for (const auto &mix : mixes) {
            ExperimentConfig cfg = benchConfig("Baseline", nrh);
            RunResult base = runExperiment(cfg, mix);
            MultiProgMetrics base_m = metricsAgainstAlone(cfg, mix, base);
            for (const auto &mech : kMechs) {
                cfg.mechanism = mech;
                RunResult res = runExperiment(cfg, mix);
                MultiProgMetrics m = metricsAgainstAlone(cfg, mix, res);
                ws[mech].push_back(ratio(m.weightedSpeedup,
                                         base_m.weightedSpeedup));
                hs[mech].push_back(ratio(m.harmonicSpeedup,
                                         base_m.harmonicSpeedup));
                ms[mech].push_back(ratio(m.maxSlowdown, base_m.maxSlowdown));
                en[mech].push_back(ratio(res.energyJ, base.energyJ));
            }
        }
        for (const auto &mech : kMechs) {
            t.addRow({strfmt("%u", nrh), mech,
                      TextTable::num(geomean(ws[mech]), 3),
                      TextTable::num(geomean(hs[mech]), 3),
                      TextTable::num(geomean(ms[mech]), 3),
                      TextTable::num(geomean(en[mech]), 3)});
        }
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    setVerbose(false);
    benchHeader("Figure 6: scaling with worsening RowHammer vulnerability",
                "Figure 6 (Section 8.3); compressed thresholds mirror the "
                "paper's 32K..1K sweep");

    // The compressed window (0.5 ms vs 64 ms) compresses thresholds by the
    // same factor: 4K..256 here plays the role of 32K..2K in the paper.
    std::vector<std::uint32_t> thresholds = {4096, 2048, 1024, 512, 256};
    auto n_mixes = std::max<unsigned>(1,
        static_cast<unsigned>(1 * benchScale()));

    runScenario("No RowHammer attack", makeBenignMixes(n_mixes, 7),
                thresholds);
    runScenario("RowHammer attack present", makeAttackMixes(n_mixes, 7),
                thresholds);

    std::printf("Paper shape: PARA degrades as N_RH shrinks (no attack);\n"
                "BlockHammer's advantage under attack grows as N_RH "
                "shrinks.\n\n");
    return 0;
}
