/**
 * @file
 * Reproduces Figure 6: performance and DRAM energy as the RowHammer
 * threshold N_RH shrinks (worsening vulnerability), for the four most
 * scalable mechanisms: PARA, TWiCe (ideal), Graphene, and BlockHammer.
 *
 * Paper shape: with no attack, PARA's overhead explodes at small N_RH
 * (reactive refreshes fire constantly) while TWiCe/Graphene/BlockHammer
 * stay ~1.0; with an attack present, BlockHammer's benefit *grows* as
 * N_RH shrinks (it throttles the attacker earlier and harder).
 */

#include <map>

#include "bench/experiments.hh"

namespace bh
{

namespace
{

const std::vector<std::string> kMechs = {"PARA", "TWiCe", "Graphene",
                                         "BlockHammer"};

Json
runScenario(BenchContext &ctx, const char *label, const char *title,
            const std::vector<MixSpec> &mixes,
            const std::vector<std::uint32_t> &thresholds)
{
    warmAloneIpc(ctx, benchConfig(ctx, "Baseline", thresholds[0]), mixes);

    // Sweep cells: (threshold x mix) x (baseline + the four mechanisms).
    const std::size_t runs_per_mix = 1 + kMechs.size();
    const std::size_t cells_per_nrh = mixes.size() * runs_per_mix;
    std::vector<Json> cells = ctx.runCells(
        label, thresholds.size() * cells_per_nrh, [&](std::size_t i) {
            std::uint32_t nrh = thresholds[i / cells_per_nrh];
            const MixSpec &mix = mixes[(i % cells_per_nrh) / runs_per_mix];
            ExperimentConfig cfg = benchConfig(ctx, "Baseline", nrh);
            std::size_t run = i % runs_per_mix;
            if (run > 0)
                cfg.mechanism = kMechs[run - 1];
            RunResult res = runExperiment(cfg, mix);
            MultiProgMetrics metrics = metricsAgainstAlone(cfg, mix, res);
            Json cell = Json::object();
            cell["ws"] = metrics.weightedSpeedup;
            cell["hs"] = metrics.harmonicSpeedup;
            cell["ms"] = metrics.maxSlowdown;
            cell["energy_j"] = res.energyJ;
            cell["stats"] = res.stats;
            return cell;
        });
    if (!ctx.aggregate())
        return Json();

    std::printf("--- %s ---\n", title);
    Json out = Json::object();
    TextTable t({"N_RH", "mechanism", "norm WS", "norm HS", "norm MaxSlow",
                 "norm Energy"});
    for (std::size_t n = 0; n < thresholds.size(); ++n) {
        std::map<std::string, std::vector<double>> ws, hs, ms, en;
        for (std::size_t x = 0; x < mixes.size(); ++x) {
            const Json *row = &cells[n * cells_per_nrh + x * runs_per_mix];
            const Json &base = row[0];
            for (std::size_t m = 0; m < kMechs.size(); ++m) {
                const Json &res = row[1 + m];
                ws[kMechs[m]].push_back(ratio(cellNum(res, "ws"),
                                              cellNum(base, "ws")));
                hs[kMechs[m]].push_back(ratio(cellNum(res, "hs"),
                                              cellNum(base, "hs")));
                ms[kMechs[m]].push_back(ratio(cellNum(res, "ms"),
                                              cellNum(base, "ms")));
                en[kMechs[m]].push_back(ratio(cellNum(res, "energy_j"),
                                              cellNum(base, "energy_j")));
            }
        }
        Json nrh_json = Json::object();
        for (const auto &mech : kMechs) {
            Json row = Json::object();
            row["weighted_speedup"] = geomean(ws[mech]);
            row["harmonic_speedup"] = geomean(hs[mech]);
            row["max_slowdown"] = geomean(ms[mech]);
            row["energy"] = geomean(en[mech]);
            nrh_json[mech] = row;
            t.addRow({strfmt("%u", thresholds[n]), mech,
                      TextTable::num(geomean(ws[mech]), 3),
                      TextTable::num(geomean(hs[mech]), 3),
                      TextTable::num(geomean(ms[mech]), 3),
                      TextTable::num(geomean(en[mech]), 3)});
        }
        out[strfmt("%u", thresholds[n])] = nrh_json;
    }
    std::printf("%s\n", t.render().c_str());
    return out;
}

} // namespace

void
benchFig6(BenchContext &ctx)
{
    // The compressed window (0.5 ms vs 64 ms) compresses thresholds by the
    // same factor: 4K..256 here plays the role of 32K..2K in the paper.
    std::vector<std::uint32_t> thresholds = {4096, 2048, 1024, 512, 256};
    unsigned n_mixes = ctx.scaled(1);

    Json no_attack = runScenario(ctx, "no_attack", "No RowHammer attack",
                                 makeBenignMixes(n_mixes, 7), thresholds);
    Json attack = runScenario(ctx, "attack", "RowHammer attack present",
                              makeAttackMixes(n_mixes, 7), thresholds);
    if (!ctx.aggregate())
        return;
    ctx.result["no_attack"] = std::move(no_attack);
    ctx.result["attack"] = std::move(attack);

    std::printf("Paper shape: PARA degrades as N_RH shrinks (no attack);\n"
                "BlockHammer's advantage under attack grows as N_RH "
                "shrinks.\n\n");
}

} // namespace bh
