/**
 * @file
 * Reproduces Table 7 (appendix): BlockHammer's configuration parameters
 * for every evaluated RowHammer threshold. Analytical.
 */

#include "bench/experiments.hh"
#include "blockhammer/config.hh"

namespace bh
{

void
benchTable7(BenchContext &ctx)
{
    // Analytic: no simulation cells, runs whole in every shard.
    if (!ctx.aggregate())
        return;
    Json rows = Json::object();
    TextTable t({"N_RH", "N_RH*", "CBF size", "N_BL", "tCBF ms",
                 "tDelay us", "HB entries"});
    for (std::uint32_t nrh : {32768u, 16384u, 8192u, 4096u, 2048u, 1024u}) {
        auto cfg = BlockHammerConfig::forThreshold(nrh, DramTimings::ddr4());
        Json row = Json::object();
        row["N_RH_star"] = cfg.nRHStar();
        row["cbf_counters"] = cfg.cbf.numCounters;
        row["N_BL"] = cfg.nBL;
        row["tCBF_ms"] = cyclesToNs(cfg.tCBF) / 1e6;
        row["tDelay_us"] = cyclesToNs(cfg.tDelay()) / 1e3;
        row["history_entries"] = cfg.historyEntries();
        rows[strfmt("%u", nrh)] = row;
        t.addRow({strfmt("%uK", nrh / 1024),
                  strfmt("%u", cfg.nRHStar()),
                  strfmt("%u", cfg.cbf.numCounters),
                  strfmt("%u", cfg.nBL),
                  TextTable::num(cyclesToNs(cfg.tCBF) / 1e6, 0),
                  TextTable::num(cyclesToNs(cfg.tDelay()) / 1e3, 2),
                  strfmt("%u", cfg.historyEntries())});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper row (N_RH=32K): CBF 1K, N_BL 8K, tCBF 64 ms.\n"
                "Paper row (N_RH=1K): CBF 8K, N_BL 256, tCBF 64 ms.\n\n");
    ctx.result["thresholds"] = rows;
}

} // namespace bh
