/**
 * @file
 * Reproduces Table 7 (appendix): BlockHammer's configuration parameters
 * for every evaluated RowHammer threshold. Analytical.
 */

#include "bench/bench_util.hh"
#include "blockhammer/config.hh"

using namespace bh;

int
main()
{
    setVerbose(false);
    benchHeader("Table 7: configuration scaling across N_RH",
                "Table 7 (appendix); N_BL = N_RH/4, CBF grows as N_BL "
                "shrinks, tCBF = tREFW = 64 ms");

    TextTable t({"N_RH", "N_RH*", "CBF size", "N_BL", "tCBF ms",
                 "tDelay us", "HB entries"});
    for (std::uint32_t nrh : {32768u, 16384u, 8192u, 4096u, 2048u, 1024u}) {
        auto cfg = BlockHammerConfig::forThreshold(nrh, DramTimings::ddr4());
        t.addRow({strfmt("%uK", nrh / 1024),
                  strfmt("%u", cfg.nRHStar()),
                  strfmt("%u", cfg.cbf.numCounters),
                  strfmt("%u", cfg.nBL),
                  TextTable::num(cyclesToNs(cfg.tCBF) / 1e6, 0),
                  TextTable::num(cyclesToNs(cfg.tDelay()) / 1e3, 2),
                  strfmt("%u", cfg.historyEntries())});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper row (N_RH=32K): CBF 1K, N_BL 8K, tCBF 64 ms.\n"
                "Paper row (N_RH=1K): CBF 8K, N_BL 256, tCBF 64 ms.\n\n");
    return 0;
}
