/**
 * @file
 * bh_collect: the result-aggregation CLI for sharded bh_bench runs.
 *
 *   bh_collect merge [-o FILE] SHARD.json...   recombine shard outputs
 *   bh_collect diff  [tolerances] A.json B.json  structural golden diff
 *
 * `merge` validates every input's run manifest (grid fingerprint, shard
 * ownership, per-cell digests), checks that overlapping cells are
 * byte-identical across shards/machines, and — once the cell grid is
 * fully covered — replays the experiment's aggregation over the merged
 * payloads through the bench registry. The reconstructed report is
 * byte-identical to what an unsharded `bh_bench` run writes.
 *
 * `diff` compares two reports structurally with per-field numeric
 * tolerance; CI uses it to gate merged outputs against checked-in
 * golden JSON.
 */

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <chrono>
#include <map>

#include "bench/registry.hh"
#include "common/fsio.hh"
#include "report/perf.hh"
#include "report/report.hh"

namespace
{

void
usage(std::FILE *out)
{
    std::fprintf(out,
        "usage: bh_collect merge [options] BENCH_*.json...\n"
        "       bh_collect diff [options] A.json B.json\n"
        "       bh_collect status [options] PATH...\n"
        "       bh_collect perfgate [options] GOLDEN.json BENCH_perf.json\n"
        "       bh_collect pareto [options] BENCH_*.json...\n"
        "\n"
        "merge: validate and combine N sharded bh_bench outputs of one\n"
        "experiment into a report byte-identical to an unsharded run.\n"
        "Overlapping cells must match byte-for-byte; edited cells fail\n"
        "their manifest digest; missing cells abort the merge.\n"
        "\n"
        "  -o, --out FILE   output path (default: BENCH_<experiment>.json)\n"
        "\n"
        "diff: structural comparison with numeric tolerance; exits 0 when\n"
        "the documents agree, 1 when they differ, 2 on usage/IO errors.\n"
        "\n"
        "  --abs-tol X      absolute tolerance for numeric fields\n"
        "  --rel-tol X      relative tolerance for numeric fields\n"
        "  --ignore PATH    skip a dotted subtree (repeatable), e.g.\n"
        "                   --ignore manifest.cell_digests\n"
        "\n"
        "status: scan files and directory trees for BENCH_*.json shard\n"
        "outputs and report, per experiment grid, which shards exist and\n"
        "which sweep cells are still missing — with per-shard elapsed\n"
        "time (from sibling BENCH_perf.json self-profiles) and an\n"
        "estimate of the remaining shard work. Exits 0 when every grid\n"
        "is fully covered, 1 when cells are missing, 2 on IO errors.\n"
        "\n"
        "  --stale-after SECS   flag shards of incomplete grids whose\n"
        "                       file has not changed for SECS seconds\n"
        "                       (default 3600; 0 disables)\n"
        "\n"
        "perfgate: gate a BENCH_perf.json self-profile against a golden\n"
        "of reference simulation rates (cycles/second). Exits 0 when\n"
        "every applicable entry is within its tolerance band, 1 on a\n"
        "perf regression, 2 on usage/IO errors.\n"
        "\n"
        "  --min-ratio R        override every entry's min_ratio: fail\n"
        "                       below R x the golden rate\n"
        "\n"
        "pareto: join one BENCH_fig5.json, BENCH_table4.json, and\n"
        "BENCH_secsweep.json (any order; identified by their manifests)\n"
        "into one per-mechanism slowdown x area x security-margin table\n"
        "(BENCH_pareto.json) and mark the Pareto-efficient mechanisms.\n"
        "Exits 0 on success, 2 on missing/mismatched inputs.\n"
        "\n"
        "  -o, --out FILE   output path (default: BENCH_pareto.json)\n");
}

int
cmdMerge(const std::vector<std::string> &args)
{
    using namespace bh;

    std::string out_path;
    std::vector<std::string> files;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "-o" || arg == "--out") {
            if (++i >= args.size()) {
                std::fprintf(stderr, "bh_collect: %s needs a value\n",
                             arg.c_str());
                return 2;
            }
            out_path = args[i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "bh_collect merge: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) {
        std::fprintf(stderr, "bh_collect merge: no input files\n");
        return 2;
    }

    std::vector<LoadedReport> inputs;
    std::string err;
    for (const std::string &file : files) {
        LoadedReport report;
        if (!loadReportFile(file, report, err)) {
            std::fprintf(stderr, "bh_collect: %s\n", err.c_str());
            return 2;
        }
        inputs.push_back(std::move(report));
    }

    MergeResult merge;
    if (!mergeReports(inputs, merge, err)) {
        std::fprintf(stderr, "bh_collect: merge failed: %s\n", err.c_str());
        return 1;
    }

    Json final_doc;
    if (merge.needsReplay) {
        const BenchInfo *info = findBench(merge.manifest.experiment);
        if (!info) {
            std::fprintf(stderr,
                         "bh_collect: unknown experiment '%s' (shards from "
                         "a newer binary?)\n",
                         merge.manifest.experiment.c_str());
            return 1;
        }
        // No cell simulates during a replay, so a single-worker pool
        // suffices for both passes below.
        Runner runner(1);

        // Enumerate this binary's cell grid first: if it diverged from
        // the grid that produced the shards, fail with the fingerprint
        // diagnostic instead of dying mid-replay on a missing cell.
        {
            BenchContext probe;
            probe.scale = merge.manifest.scale;
            probe.channels = merge.manifest.channels;
            probe.attackFilter = merge.manifest.attackFilter;
            probe.runner = &runner;
            probe.mode = BenchContext::CellMode::Enumerate;
            runBench(*info, probe);
            const Json *fp = probe.result["manifest"].find("fingerprint");
            if (!fp || fp->asString() != merge.manifest.fingerprint) {
                std::fprintf(stderr,
                             "bh_collect: this binary's grid fingerprint %s "
                             "does not match the shards' %s — its cell grid "
                             "diverged from the one that produced the "
                             "shards\n",
                             fp ? fp->asString().c_str() : "(none)",
                             merge.manifest.fingerprint.c_str());
                return 1;
            }
        }

        // Replay the experiment's aggregation over the merged payloads.
        BenchContext ctx;
        ctx.scale = merge.manifest.scale;
        ctx.channels = merge.manifest.channels;
        ctx.attackFilter = merge.manifest.attackFilter;
        ctx.runner = &runner;
        ctx.mode = BenchContext::CellMode::Replay;
        ctx.replayCells = &merge.cells;
        runBench(*info, ctx);
        final_doc = std::move(ctx.result);
    } else {
        final_doc = std::move(merge.merged);
    }

    if (out_path.empty())
        out_path = "BENCH_" + merge.manifest.experiment + ".json";
    std::string write_err;
    if (!atomicWriteFile(out_path, final_doc.dump(2) + "\n", write_err)) {
        std::fprintf(stderr, "bh_collect: %s\n", write_err.c_str());
        return 2;
    }
    std::printf("bh_collect: merged %zu input(s), %llu cell(s) -> %s%s\n",
                inputs.size(),
                static_cast<unsigned long long>(merge.manifest.cellTotal),
                out_path.c_str(),
                merge.needsReplay ? " (aggregation replayed)" : "");
    return 0;
}

int
cmdStatus(const std::vector<std::string> &args)
{
    using namespace bh;
    namespace fs = std::filesystem;

    double stale_after = 3600.0;

    // Expand directory arguments into the BENCH_*.json files they hold.
    // Quarantined files (*.corrupt, left by bh_bench --resume or bh_farm
    // when a partial was torn/mangled) are counted, not loaded.
    std::vector<std::string> files;
    std::uint64_t quarantined = 0;
    for (std::size_t ai = 0; ai < args.size(); ++ai) {
        const std::string &arg = args[ai];
        if (arg == "--stale-after") {
            if (++ai >= args.size()) {
                std::fprintf(stderr,
                             "bh_collect: --stale-after needs a value\n");
                return 2;
            }
            stale_after = std::atof(args[ai].c_str());
            continue;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "bh_collect status: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
        std::error_code ec;
        if (fs::is_directory(arg, ec)) {
            // Non-throwing iteration: an unreadable subtree is an IO
            // error (exit 2), never a crash or a silently shorter scan —
            // under-reporting is the one failure a coverage tool must
            // not have.
            auto it = fs::recursive_directory_iterator(arg, ec);
            for (; !ec && it != fs::recursive_directory_iterator();
                 it.increment(ec)) {
                std::error_code type_ec;
                if (!it->is_regular_file(type_ec) || type_ec)
                    continue;
                std::string name = it->path().filename().string();
                if (name.rfind("BENCH_", 0) != 0)
                    continue;
                if (name.find(".corrupt") != std::string::npos) {
                    ++quarantined;
                    continue;
                }
                // BENCH_perf.json self-profiles are not shard reports;
                // they are read separately for per-shard elapsed time.
                if (name.size() > 5 &&
                    name.compare(name.size() - 5, 5, ".json") == 0 &&
                    name != "BENCH_perf.json")
                    files.push_back(it->path().string());
            }
            if (ec) {
                std::fprintf(stderr,
                             "bh_collect status: error scanning %s: %s\n",
                             arg.c_str(), ec.message().c_str());
                return 2;
            }
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "bh_collect status: no BENCH_*.json inputs found\n");
        return 2;
    }
    std::sort(files.begin(), files.end());

    // A corrupt shard file must not hide the status of the healthy ones:
    // count and report it (its cells show up as missing) instead of
    // aborting the whole scan the way merge rightly does.
    std::vector<LoadedReport> inputs;
    std::uint64_t corrupt = 0;
    std::string err;
    for (const std::string &file : files) {
        LoadedReport report;
        if (!loadReportFile(file, report, err)) {
            std::fprintf(stderr,
                         "bh_collect: corrupt input skipped: %s\n",
                         err.c_str());
            ++corrupt;
            continue;
        }
        inputs.push_back(std::move(report));
    }
    if (inputs.empty()) {
        std::fprintf(stderr,
                     "bh_collect status: no loadable BENCH_*.json inputs\n");
        return 2;
    }

    // Per-shard elapsed time comes from the BENCH_perf.json self-profile
    // bh_bench writes next to its reports; parse each directory's at
    // most once.
    std::map<std::string, Json> perf_by_dir;
    auto shardElapsed = [&](const std::string &report_path,
                            const std::string &experiment) -> double {
        std::string dir = fs::path(report_path).parent_path().string();
        auto it = perf_by_dir.find(dir);
        if (it == perf_by_dir.end()) {
            Json doc;
            std::ifstream f(dir.empty() ? "BENCH_perf.json"
                                        : dir + "/BENCH_perf.json",
                            std::ios::binary);
            if (f) {
                std::ostringstream text;
                text << f.rdbuf();
                Json::parse(text.str(), doc);
            }
            it = perf_by_dir.emplace(dir, std::move(doc)).first;
        }
        const Json *exps = it->second.find("experiments");
        const Json *e = exps ? exps->find(experiment) : nullptr;
        const Json *wall = e ? e->find("wall_s") : nullptr;
        return wall ? wall->asDouble() : -1.0;
    };

    std::map<std::string, const LoadedReport *> by_path;
    for (const LoadedReport &report : inputs)
        by_path[report.path] = &report;

    bool all_complete = true;
    std::printf("%-14s %8s %10s %12s  %s\n", "experiment", "scale",
                "shards", "cells", "status");
    for (const GridStatus &g : gridStatus(inputs)) {
        std::string shard_list;
        for (const std::string &s : g.shards)
            shard_list += (shard_list.empty() ? "" : ",") + s;
        std::printf("%-14s %8s %10s %6llu/%-5llu  %s\n",
                    g.experiment.c_str(),
                    Json::formatDouble(g.scale).c_str(),
                    shard_list.c_str(),
                    static_cast<unsigned long long>(g.cellsCovered),
                    static_cast<unsigned long long>(g.cellTotal),
                    g.complete() ? "complete" : "INCOMPLETE");

        // Per-shard detail: elapsed simulation time and, for incomplete
        // grids, how long the shard file has sat unchanged (a crashed or
        // wedged shard run never finishes its file).
        double elapsed_total = 0.0;
        for (const std::string &path : g.paths) {
            const LoadedReport *report = by_path[path];
            double elapsed = shardElapsed(path, g.experiment);
            if (elapsed > 0.0)
                elapsed_total += elapsed;
            std::string stale;
            if (!g.complete() && stale_after > 0.0) {
                std::error_code ec;
                auto mtime = fs::last_write_time(path, ec);
                if (!ec) {
                    double age = std::chrono::duration<double>(
                        decltype(mtime)::clock::now() - mtime).count();
                    if (age > stale_after)
                        stale = strfmt("  STALE (unchanged %.0f s)", age);
                }
            }
            std::printf("  shard %u/%-4u %-40s elapsed %s%s\n",
                        report ? report->manifest.shardIndex : 0,
                        report ? report->manifest.shardCount : 0,
                        path.c_str(),
                        elapsed >= 0.0 ? strfmt("%.2f s", elapsed).c_str()
                                       : "n/a",
                        stale.c_str());
        }
        if (!g.complete()) {
            all_complete = false;
            std::string missing;
            for (std::uint64_t c : g.missingCells)
                missing += (missing.empty() ? "" : " ") + std::to_string(c);
            bool truncated = g.missingCells.size() ==
                GridStatus::kMaxListedMissing &&
                g.cellsCovered + g.missingCells.size() < g.cellTotal;
            std::printf("  missing cells: %s%s\n", missing.c_str(),
                        truncated ? " ..." : "");
            // Completion estimate from the covered cells' rate: crude
            // (cells vary in cost) but enough to size a resume run.
            if (g.cellsCovered > 0 && elapsed_total > 0.0)
                std::printf("  estimated remaining: ~%.1f s of shard work "
                            "(%llu cells at %.2f s/cell)\n",
                            elapsed_total *
                                static_cast<double>(g.cellTotal -
                                                    g.cellsCovered) /
                                static_cast<double>(g.cellsCovered),
                            static_cast<unsigned long long>(
                                g.cellTotal - g.cellsCovered),
                            elapsed_total /
                                static_cast<double>(g.cellsCovered));
        }
    }
    if (corrupt > 0 || quarantined > 0)
        std::printf("corrupt inputs: %llu skipped this scan, %llu "
                    "quarantined earlier (*.corrupt)\n",
                    static_cast<unsigned long long>(corrupt),
                    static_cast<unsigned long long>(quarantined));
    return all_complete ? 0 : 1;
}

int
cmdPerfGate(const std::vector<std::string> &args)
{
    using namespace bh;

    double min_ratio = 0.0;
    std::vector<std::string> files;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--min-ratio") {
            if (++i >= args.size()) {
                std::fprintf(stderr,
                             "bh_collect: --min-ratio needs a value\n");
                return 2;
            }
            min_ratio = std::atof(args[i].c_str());
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "bh_collect perfgate: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2) {
        std::fprintf(stderr, "bh_collect perfgate: GOLDEN.json and "
                     "BENCH_perf.json required\n");
        return 2;
    }

    Json docs[2];
    for (int i = 0; i < 2; ++i) {
        std::ifstream f(files[i], std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "bh_collect: cannot open %s\n",
                         files[i].c_str());
            return 2;
        }
        std::ostringstream text;
        text << f.rdbuf();
        std::string err;
        if (!Json::parse(text.str(), docs[i], &err)) {
            std::fprintf(stderr, "bh_collect: %s: JSON parse error: %s\n",
                         files[i].c_str(), err.c_str());
            return 2;
        }
    }

    PerfGateResult gate = perfGate(docs[0], docs[1], min_ratio);
    for (const std::string &line : gate.lines)
        std::printf("%s\n", line.c_str());
    std::printf("bh_collect: perfgate %s\n", gate.pass ? "passed" : "FAILED");
    return gate.pass ? 0 : 1;
}

/**
 * Join fig5 (performance under attack), table4 (area), and secsweep
 * (security margin) into one per-mechanism Pareto table. The three
 * views exist in separate reports because they come from separate
 * grids; the joined table is what a mechanism-selection decision
 * actually reads.
 */
int
cmdPareto(const std::vector<std::string> &args)
{
    using namespace bh;

    std::string out_path = "BENCH_pareto.json";
    std::vector<std::string> files;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "-o" || arg == "--out") {
            if (++i >= args.size()) {
                std::fprintf(stderr, "bh_collect: %s needs a value\n",
                             arg.c_str());
                return 2;
            }
            out_path = args[i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "bh_collect pareto: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) {
        std::fprintf(stderr, "bh_collect pareto: no input files\n");
        return 2;
    }

    // Identify the three source reports by their manifests, any order.
    std::map<std::string, Json> docs;
    std::map<std::string, std::string> paths;
    for (const std::string &file : files) {
        std::ifstream f(file, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "bh_collect: cannot open %s\n",
                         file.c_str());
            return 2;
        }
        std::ostringstream text;
        text << f.rdbuf();
        Json doc;
        std::string err;
        if (!Json::parse(text.str(), doc, &err)) {
            std::fprintf(stderr, "bh_collect: %s: JSON parse error: %s\n",
                         file.c_str(), err.c_str());
            return 2;
        }
        const Json *manifest = doc.find("manifest");
        const Json *exp = manifest ? manifest->find("experiment") : nullptr;
        if (!exp) {
            std::fprintf(stderr,
                         "bh_collect: %s carries no run manifest\n",
                         file.c_str());
            return 2;
        }
        std::string name = exp->asString();
        if (docs.count(name)) {
            std::fprintf(stderr,
                         "bh_collect pareto: duplicate %s report (%s, %s)\n",
                         name.c_str(), paths[name].c_str(), file.c_str());
            return 2;
        }
        paths[name] = file;
        docs[name] = std::move(doc);
    }
    for (const char *need : {"fig5", "table4", "secsweep"}) {
        if (!docs.count(need)) {
            std::fprintf(stderr,
                         "bh_collect pareto: missing a BENCH_%s.json input "
                         "(got %zu file(s))\n",
                         need, files.size());
            return 2;
        }
    }

    const Json &fig5 = docs["fig5"];
    const Json &table4 = docs["table4"];
    const Json &secsweep = docs["secsweep"];

    // The secsweep mechanism list is the factory-derived coverage set
    // (Baseline first); the join is driven by it so a mechanism missing
    // from one of the other reports is visible, not dropped.
    const Json *mech_list = secsweep.find("mechanisms");
    if (!mech_list || mech_list->size() == 0) {
        std::fprintf(stderr,
                     "bh_collect pareto: secsweep report lists no "
                     "mechanisms\n");
        return 2;
    }

    struct Point
    {
        std::string mech;
        double slowdown = 1.0;      ///< 1 / normalized WS under attack
        double area = 0.0;          ///< mm^2 at N_RH = 1K
        double margin = 0.0;        ///< worst secsweep margin
        bool hasArea = true;
        bool onFront = false;
    };
    std::vector<Point> points;

    Json mechanisms = Json::object();
    for (std::size_t i = 0; i < mech_list->size(); ++i) {
        const std::string mech = mech_list->at(i).asString();
        Point p;
        p.mech = mech;

        Json row = Json::object();
        const Json *attack = fig5.find("attack");
        const Json *perf = attack ? attack->find(mech) : nullptr;
        double ws = 1.0, ms = 1.0;
        if (perf) {
            const Json *v = perf->find("weighted_speedup");
            ws = v ? v->asDouble() : 1.0;
            v = perf->find("max_slowdown");
            ms = v ? v->asDouble() : 1.0;
        }
        // Baseline (the fig5 normalizer) has no row: it is 1.0 by
        // definition, which the defaults above already encode.
        p.slowdown = ws > 0.0 ? 1.0 / ws : 0.0;
        row["norm_ws_attack"] = ws;
        row["max_slowdown_attack"] = ms;
        row["slowdown"] = p.slowdown;

        const Json *nrh1k = table4.find("nrh_1k");
        const Json *cost = nrh1k ? nrh1k->find(mech) : nullptr;
        if (cost && !cost->isNull()) {
            const Json *v = cost->find("area_mm2");
            p.area = v ? v->asDouble() : 0.0;
            row["area_mm2"] = p.area;
            const Json *pct = cost->find("cpu_area_pct");
            row["cpu_area_pct"] = pct ? pct->asDouble() : 0.0;
        } else if (mech == "Baseline") {
            row["area_mm2"] = 0.0;
            row["cpu_area_pct"] = 0.0;
        } else {
            // Known design-point gap (PRoHIT/MRLoc at N_RH = 1K).
            p.hasArea = false;
            row["area_mm2"] = Json();
            row["cpu_area_pct"] = Json();
        }

        const Json *worst = secsweep.find("worst");
        const Json *sec = worst ? worst->find(mech) : nullptr;
        if (!sec) {
            std::fprintf(stderr,
                         "bh_collect pareto: secsweep has no worst-margin "
                         "entry for %s\n",
                         mech.c_str());
            return 2;
        }
        const Json *v = sec->find("margin");
        p.margin = v ? v->asDouble() : 0.0;
        row["worst_margin"] = p.margin;
        v = sec->find("bit_flips");
        row["bit_flips"] = v ? v->asInt() : 0;
        row["act_bound_held"] = p.margin < 1.0;

        mechanisms[mech] = std::move(row);
        points.push_back(std::move(p));
    }

    // Pareto efficiency over (slowdown, area, margin), all minimized.
    // Mechanisms without a configurable area at this threshold cannot
    // be placed and never make the front.
    for (Point &a : points) {
        if (!a.hasArea)
            continue;
        bool dominated = false;
        for (const Point &b : points) {
            if (&a == &b || !b.hasArea)
                continue;
            bool no_worse = b.slowdown <= a.slowdown && b.area <= a.area &&
                b.margin <= a.margin;
            bool better = b.slowdown < a.slowdown || b.area < a.area ||
                b.margin < a.margin;
            if (no_worse && better) {
                dominated = true;
                break;
            }
        }
        a.onFront = !dominated;
    }

    std::printf("--- mechanism Pareto view: slowdown x area x security "
                "margin ---\n");
    TextTable t({"mechanism", "norm WS (attack)", "area mm^2 (1K)",
                 "worst margin", "ACT bound", "Pareto"});
    Json front = Json::array();
    for (const Point &p : points) {
        Json &row = mechanisms[p.mech];
        row["on_front"] = p.onFront;
        if (p.onFront)
            front.push(p.mech);
        t.addRow({p.mech,
                  TextTable::num(ratio(1.0, p.slowdown), 3),
                  p.hasArea ? TextTable::num(p.area, 3) : "x",
                  TextTable::num(p.margin, 3) +
                      (p.margin >= 1.0 ? "!" : ""),
                  p.margin < 1.0 ? "HELD" : "violated",
                  p.onFront ? "front" : "-"});
    }
    std::printf("%s\n", t.render().c_str());

    Json out = Json::object();
    out["experiment"] = std::string("pareto");
    Json sources = Json::object();
    for (const auto &kv : paths)
        sources[kv.first] = kv.second;
    out["sources"] = std::move(sources);
    out["mechanisms"] = std::move(mechanisms);
    out["front"] = std::move(front);

    std::string write_err;
    if (!atomicWriteFile(out_path, out.dump(2) + "\n", write_err)) {
        std::fprintf(stderr, "bh_collect: %s\n", write_err.c_str());
        return 2;
    }
    std::printf("bh_collect: pareto join of %zu mechanism(s) -> %s\n",
                points.size(), out_path.c_str());
    return 0;
}

int
cmdDiff(const std::vector<std::string> &args)
{
    using namespace bh;

    DiffOptions opts;
    std::vector<std::string> files;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&]() -> const char * {
            if (++i >= args.size()) {
                std::fprintf(stderr, "bh_collect: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return args[i].c_str();
        };
        if (arg == "--abs-tol") {
            opts.absTol = std::atof(value());
        } else if (arg == "--rel-tol") {
            opts.relTol = std::atof(value());
        } else if (arg == "--ignore") {
            opts.ignorePaths.push_back(value());
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "bh_collect diff: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2) {
        std::fprintf(stderr, "bh_collect diff: exactly two files required\n");
        return 2;
    }

    Json docs[2];
    for (int i = 0; i < 2; ++i) {
        std::ifstream f(files[i], std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "bh_collect: cannot open %s\n",
                         files[i].c_str());
            return 2;
        }
        std::ostringstream text;
        text << f.rdbuf();
        std::string err;
        if (!Json::parse(text.str(), docs[i], &err)) {
            std::fprintf(stderr, "bh_collect: %s: JSON parse error: %s\n",
                         files[i].c_str(), err.c_str());
            return 2;
        }
    }

    std::vector<std::string> diffs = structuralDiff(docs[0], docs[1], opts);
    for (const std::string &line : diffs)
        std::printf("%s\n", line.c_str());
    if (diffs.empty()) {
        std::printf("bh_collect: %s and %s agree within tolerance\n",
                    files[0].c_str(), files[1].c_str());
        return 0;
    }
    std::printf("bh_collect: %zu difference(s)\n", diffs.size());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(stderr);
        return 2;
    }
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (cmd == "--help" || cmd == "-h") {
        usage(stdout);
        return 0;
    }
    if (cmd == "merge")
        return cmdMerge(args);
    if (cmd == "diff")
        return cmdDiff(args);
    if (cmd == "status")
        return cmdStatus(args);
    if (cmd == "perfgate")
        return cmdPerfGate(args);
    if (cmd == "pareto")
        return cmdPareto(args);
    std::fprintf(stderr, "bh_collect: unknown command '%s'\n", cmd.c_str());
    usage(stderr);
    return 2;
}
