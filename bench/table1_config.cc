/**
 * @file
 * Reproduces Table 1: BlockHammer parameter values for the paper's DDR4
 * timing specification and RowHammer threshold of 32K, tuned for
 * double-sided attacks. Purely analytical (Equations 1 and 3).
 */

#include "bench/experiments.hh"
#include "blockhammer/config.hh"

namespace bh
{

void
benchTable1(BenchContext &ctx)
{
    // Analytic: no simulation cells, runs whole in every shard.
    if (!ctx.aggregate())
        return;
    auto timings = DramTimings::ddr4();
    auto cfg = BlockHammerConfig::forThreshold(32768, timings);

    TextTable t({"parameter", "paper", "this repo"});
    t.addRow({"N_RH", "32K", strfmt("%u", cfg.nRH)});
    t.addRow({"N_RH*", "16K", strfmt("%u", cfg.nRHStar())});
    t.addRow({"tREFW (ms)", "64",
              TextTable::num(cyclesToNs(cfg.tREFW) / 1e6, 0)});
    t.addRow({"tRC (ns)", "46.25", TextTable::num(cyclesToNs(cfg.tRC), 2)});
    t.addRow({"tFAW (ns)", "35", TextTable::num(cyclesToNs(cfg.tFAW), 2)});
    t.addRow({"banks", "16", strfmt("%u", cfg.banks)});
    t.addRow({"N_BL", "8K", strfmt("%u", cfg.nBL)});
    t.addRow({"tCBF (ms)", "64",
              TextTable::num(cyclesToNs(cfg.tCBF) / 1e6, 0)});
    t.addRow({"tDelay (us)", "7.7",
              TextTable::num(cyclesToNs(cfg.tDelay()) / 1e3, 2)});
    t.addRow({"CBF size (counters/bank)", "1K",
              strfmt("%u", cfg.cbf.numCounters)});
    t.addRow({"CBF hash functions", "4 x H3",
              strfmt("%u x H3", cfg.cbf.numHashes)});
    t.addRow({"History buffer (entries/rank)", "887",
              strfmt("%u", cfg.historyEntries())});
    t.addRow({"AttackThrottler counters/<thread,bank>", "2", "2"});

    std::printf("%s\n", t.render().c_str());

    std::printf("Worst-case blast model (Section 4): r_blast=6, "
                "c_k=0.5^(k-1):\n");
    BlockHammerConfig worst = cfg;
    worst.blast = BlastModel::worstCase();
    double worst_ratio = static_cast<double>(worst.nRHStar()) / worst.nRH;
    std::printf("  N_RH* = %.4f x N_RH (paper: 0.2539 x N_RH)\n\n",
                worst_ratio);

    Json params = Json::object();
    params["N_RH"] = cfg.nRH;
    params["N_RH_star"] = cfg.nRHStar();
    params["tREFW_ms"] = cyclesToNs(cfg.tREFW) / 1e6;
    params["tRC_ns"] = cyclesToNs(cfg.tRC);
    params["tFAW_ns"] = cyclesToNs(cfg.tFAW);
    params["banks"] = cfg.banks;
    params["N_BL"] = cfg.nBL;
    params["tCBF_ms"] = cyclesToNs(cfg.tCBF) / 1e6;
    params["tDelay_us"] = cyclesToNs(cfg.tDelay()) / 1e3;
    params["cbf_counters"] = cfg.cbf.numCounters;
    params["cbf_hashes"] = cfg.cbf.numHashes;
    params["history_entries"] = cfg.historyEntries();
    ctx.result["params"] = params;
    ctx.result["worst_case_nrh_star_ratio"] = worst_ratio;
}

} // namespace bh
