#include "bench/registry.hh"

#include "bench/experiments.hh"
#include "report/report.hh"

namespace bh
{

const std::vector<BenchInfo> &
benchRegistry()
{
    static const std::vector<BenchInfo> registry = {
        {"table1", "Table 1: BlockHammer parameter values",
         "Table 1 (Section 4), N_RH=32K, DDR4, double-sided model",
         benchTable1},
        {"sec321", "Section 3.2.1: RowHammer likelihood index (RHLI)",
         "observe-only vs full-functional; benign ~0, attack >> 1 "
         "observed, attack < 1 when throttled",
         benchSec321},
        {"sec5", "Section 5: security analysis (Tables 2 and 3)",
         "proof that no access pattern activates a row N_RH times in a "
         "refresh window",
         benchSec5},
        {"table4", "Table 4: hardware cost comparison",
         "Table 4 (Section 6.1); 'x' = mechanism has no published "
         "scaling rule for that threshold",
         benchTable4},
        {"fig4", "Figure 4: single-core normalized execution time / energy",
         "Figure 4 (Section 8.1), 30 benign apps x 7 mechanisms",
         benchFig4},
        {"fig5", "Figure 5: multiprogrammed performance and energy",
         "Figure 5 (Section 8.2), 8-core mixes, normalized to baseline",
         benchFig5},
        {"fig6", "Figure 6: scaling with worsening RowHammer vulnerability",
         "Figure 6 (Section 8.3); compressed thresholds mirror the "
         "paper's 32K..1K sweep",
         benchFig6},
        {"sec84", "Section 8.4: false positives and delay distribution",
         "benign mixes under full-functional BlockHammer",
         benchSec84},
        {"table7", "Table 7: configuration scaling across N_RH",
         "Table 7 (appendix); N_BL = N_RH/4, CBF grows as N_BL shrinks, "
         "tCBF = tREFW = 64 ms",
         benchTable7},
        {"table8", "Table 8: benign application characterization",
         "Table 8 (appendix): MPKI / RBCPKI per app, L/M/H classes",
         benchTable8},
        {"ablation_cbf", "Ablation: CBF size and N_BL selection (Sec 3.1.3)",
         "design-choice sweep behind Table 1's CBF=1K, N_BL=N_RH/4",
         benchAblationCbf},
        {"micro", "Microbenchmarks of latency-critical components",
         "Section 6.2's 0.97 ns safety-query claim: simulated structures "
         "are O(hashes)/O(1)",
         benchMicro},
        {"secsweep", "Security sweep: attack-pattern catalog x mechanisms",
         "Sections 5/8.2 end to end: sliding-tREFW-window ACT margin vs "
         "N_RH per (pattern, mechanism, channels); evasion patterns "
         "included (see --list for the catalog, --attack to filter)",
         benchSecSweep},
        {"fuzz", "Red team: Blacksmith-style frequency-domain fuzzer",
         "adversarial search beyond the hand-written catalog: evolves "
         "frequency-domain patterns against each mechanism and reports "
         "the worst disturbance margin ever found; winners become "
         "permanent secsweep regression cells (see DESIGN.md)",
         benchFuzz},
    };
    return registry;
}

const BenchInfo *
findBench(const std::string &name)
{
    for (const auto &info : benchRegistry())
        if (name == info.name)
            return &info;
    return nullptr;
}

/**
 * Grid identity hash: two runs can only be merged when they agree on
 * the experiment, scale, channel count, cell space, and per-cell
 * seeding scheme. The cellSeed probe folds the seeding algorithm itself
 * into the hash, so a change to the seed mixing can never silently
 * merge with old shards. Single-channel grids hash exactly as before
 * this field existed, so pre-existing shard files stay mergeable.
 */
std::string
benchGridFingerprint(const BenchInfo &info, const BenchContext &ctx)
{
    std::uint64_t h = fnv1a64(strfmt("bench-format-%d", kBenchFormatVersion));
    h = fnv1a64(info.name, h);
    h = fnv1a64(Json::formatDouble(ctx.scale), h);
    if (ctx.channels != 1)
        h = fnv1a64(strfmt("channels-%u", ctx.channels), h);
    // An --attack filter reshapes the cell grid; like channels, the
    // default (no filter) hashes exactly as before the field existed so
    // pre-existing shard files stay mergeable.
    if (!ctx.attackFilter.empty())
        h = fnv1a64("attack-" + ctx.attackFilter, h);
    h = fnv1a64(std::to_string(ctx.nextCell), h);
    for (const auto &phase : ctx.phases) {
        h = fnv1a64(phase.label, h);
        h = fnv1a64(std::to_string(phase.count), h);
    }
    h = fnv1a64(hex64(Runner::cellSeed(h, ctx.nextCell)), h);
    return hex64(h);
}

void
runBench(const BenchInfo &info, BenchContext &ctx)
{
    if (ctx.mode != BenchContext::CellMode::Enumerate)
        benchHeader(info.title, info.paperRef, ctx.scale);
    ctx.result = Json::object();
    ctx.result["experiment"] = info.name;
    ctx.result["reproduces"] = info.paperRef;
    ctx.result["scale"] = ctx.scale;
    ctx.result["manifest"];     // reserve the slot: experiment fields follow
    ctx.cells = Json::object();
    ctx.nextCell = 0;
    ctx.cellsRun = 0;
    ctx.phases.clear();

    info.fn(ctx);

    Json manifest = Json::object();
    manifest["format_version"] = kBenchFormatVersion;
    manifest["experiment"] = info.name;
    manifest["scale"] = ctx.scale;
    manifest["shard_index"] = ctx.shard.index;
    manifest["shard_count"] = ctx.shard.count;
    // Self-description only when non-default, keeping single-channel
    // reports byte-identical to older binaries (the fingerprint already
    // separates the grids).
    if (ctx.channels != 1)
        manifest["channels"] = ctx.channels;
    if (!ctx.attackFilter.empty())
        manifest["attack_filter"] = ctx.attackFilter;
    manifest["partial"] = !ctx.aggregate();
    manifest["cell_total"] = ctx.nextCell;
    manifest["cells_run"] = ctx.cellsRun;
    manifest["fingerprint"] = benchGridFingerprint(info, ctx);
    Json phases = Json::array();
    for (const auto &phase : ctx.phases) {
        Json p = Json::object();
        p["label"] = phase.label;
        p["first_cell"] = phase.firstCell;
        p["count"] = phase.count;
        phases.push(std::move(p));
    }
    manifest["phases"] = std::move(phases);
    Json digests = Json::object();
    for (const auto &kv : ctx.cells.objectItems())
        digests[kv.first] = cellDigest(kv.second);
    manifest["cell_digests"] = std::move(digests);
    ctx.result["manifest"] = std::move(manifest);
    ctx.result["cells"] = std::move(ctx.cells);
}

} // namespace bh
