/**
 * @file
 * Reproduces Figure 5: weighted speedup, harmonic speedup, maximum
 * slowdown, and DRAM energy of 8-core multiprogrammed workloads under
 * each mechanism, normalized to the unprotected baseline — without and
 * with a RowHammer attack thread present.
 *
 * Paper shape: (no attack) all mechanisms within ~2% of baseline;
 * (attack present) BlockHammer improves weighted speedup ~45% (up to
 * 61.9%), cuts DRAM energy ~29%, while all other mechanisms track the
 * baseline.
 */

#include <map>

#include "bench/experiments.hh"

namespace bh
{

namespace
{

struct Agg
{
    std::vector<double> ws, hs, ms, energy;
};

Json
runScenario(BenchContext &ctx, const char *label, const char *title,
            const std::vector<MixSpec> &mixes)
{
    ExperimentConfig base_cfg = benchConfig(ctx, "Baseline");
    warmAloneIpc(ctx, base_cfg, mixes);

    // Sweep cells: per mix, the baseline run then one run per mechanism
    // (the paper's seven plus the factory zoo, see bench_util.hh).
    const auto &mechs = comparisonMechanisms();
    const std::size_t runs_per_mix = 1 + mechs.size();
    std::vector<Json> cells = ctx.runCells(
        label, mixes.size() * runs_per_mix, [&](std::size_t i) {
            const MixSpec &mix = mixes[i / runs_per_mix];
            ExperimentConfig cfg = base_cfg;
            std::size_t run = i % runs_per_mix;
            if (run > 0)
                cfg.mechanism = mechs[run - 1];
            RunResult res = runExperiment(cfg, mix);
            MultiProgMetrics metrics = metricsAgainstAlone(cfg, mix, res);
            Json cell = Json::object();
            cell["ws"] = metrics.weightedSpeedup;
            cell["hs"] = metrics.harmonicSpeedup;
            cell["ms"] = metrics.maxSlowdown;
            cell["energy_j"] = res.energyJ;
            cell["stats"] = res.stats;
            return cell;
        });
    if (!ctx.aggregate())
        return Json();

    std::printf("--- %s (%zu mixes) ---\n", title, mixes.size());
    std::map<std::string, Agg> agg;
    for (std::size_t x = 0; x < mixes.size(); ++x) {
        const Json &base = cells[x * runs_per_mix];
        for (std::size_t m = 0; m < mechs.size(); ++m) {
            const Json &res = cells[x * runs_per_mix + 1 + m];
            Agg &a = agg[mechs[m]];
            a.ws.push_back(ratio(cellNum(res, "ws"), cellNum(base, "ws")));
            a.hs.push_back(ratio(cellNum(res, "hs"), cellNum(base, "hs")));
            a.ms.push_back(ratio(cellNum(res, "ms"), cellNum(base, "ms")));
            a.energy.push_back(ratio(cellNum(res, "energy_j"),
                                     cellNum(base, "energy_j")));
        }
    }

    auto minMax = [](const std::vector<double> &v) {
        double lo = v.empty() ? 0 : v[0], hi = lo;
        for (double x : v) {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
        return std::pair<double, double>{lo, hi};
    };
    Json out = Json::object();
    TextTable t({"mechanism", "norm WS", "WS min..max", "norm HS",
                 "norm MaxSlow", "norm Energy"});
    for (const auto &mech : mechs) {
        const Agg &a = agg[mech];
        auto [lo, hi] = minMax(a.ws);
        Json row = Json::object();
        row["weighted_speedup"] = geomean(a.ws);
        row["ws_min"] = lo;
        row["ws_max"] = hi;
        row["harmonic_speedup"] = geomean(a.hs);
        row["max_slowdown"] = geomean(a.ms);
        row["energy"] = geomean(a.energy);
        out[mech] = row;
        t.addRow({mech,
                  TextTable::num(geomean(a.ws), 3),
                  strfmt("%.2f..%.2f", lo, hi),
                  TextTable::num(geomean(a.hs), 3),
                  TextTable::num(geomean(a.ms), 3),
                  TextTable::num(geomean(a.energy), 3)});
    }
    std::printf("%s\n", t.render().c_str());
    return out;
}

} // namespace

void
benchFig5(BenchContext &ctx)
{
    unsigned n_mixes = ctx.scaled(3);
    Json no_attack = runScenario(ctx, "no_attack", "No RowHammer attack",
                                 makeBenignMixes(n_mixes, 42));
    Json attack = runScenario(ctx, "attack", "RowHammer attack present",
                              makeAttackMixes(n_mixes, 42));
    if (!ctx.aggregate())
        return;
    ctx.result["no_attack"] = std::move(no_attack);
    ctx.result["attack"] = std::move(attack);

    std::printf("Paper shape: no-attack ~1.00 for all mechanisms; under\n"
                "attack only BlockHammer raises WS/HS well above 1.0 and\n"
                "cuts energy below 1.0.\n\n");
}

} // namespace bh
