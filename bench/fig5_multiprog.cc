/**
 * @file
 * Reproduces Figure 5: weighted speedup, harmonic speedup, maximum
 * slowdown, and DRAM energy of 8-core multiprogrammed workloads under
 * each mechanism, normalized to the unprotected baseline — without and
 * with a RowHammer attack thread present.
 *
 * Paper shape: (no attack) all mechanisms within ~2% of baseline;
 * (attack present) BlockHammer improves weighted speedup ~45% (up to
 * 61.9%), cuts DRAM energy ~29%, while all other mechanisms track the
 * baseline.
 */

#include <map>

#include "bench/bench_util.hh"

using namespace bh;

namespace
{

struct Agg
{
    std::vector<double> ws, hs, ms, energy;
};

void
runScenario(const char *title, const std::vector<MixSpec> &mixes)
{
    std::printf("--- %s (%zu mixes) ---\n", title, mixes.size());
    std::map<std::string, Agg> agg;
    for (const auto &mix : mixes) {
        ExperimentConfig cfg = benchConfig("Baseline");
        RunResult base = runExperiment(cfg, mix);
        MultiProgMetrics base_m = metricsAgainstAlone(cfg, mix, base);
        for (const auto &mech : paperMechanisms()) {
            cfg.mechanism = mech;
            RunResult res = runExperiment(cfg, mix);
            MultiProgMetrics m = metricsAgainstAlone(cfg, mix, res);
            Agg &a = agg[mech];
            a.ws.push_back(ratio(m.weightedSpeedup, base_m.weightedSpeedup));
            a.hs.push_back(ratio(m.harmonicSpeedup, base_m.harmonicSpeedup));
            a.ms.push_back(ratio(m.maxSlowdown, base_m.maxSlowdown));
            a.energy.push_back(ratio(res.energyJ, base.energyJ));
        }
    }

    auto minMax = [](const std::vector<double> &v) {
        double lo = v.empty() ? 0 : v[0], hi = lo;
        for (double x : v) {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
        return std::pair<double, double>{lo, hi};
    };
    TextTable t({"mechanism", "norm WS", "WS min..max", "norm HS",
                 "norm MaxSlow", "norm Energy"});
    for (const auto &mech : paperMechanisms()) {
        const Agg &a = agg[mech];
        auto [lo, hi] = minMax(a.ws);
        t.addRow({mech,
                  TextTable::num(geomean(a.ws), 3),
                  strfmt("%.2f..%.2f", lo, hi),
                  TextTable::num(geomean(a.hs), 3),
                  TextTable::num(geomean(a.ms), 3),
                  TextTable::num(geomean(a.energy), 3)});
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    setVerbose(false);
    benchHeader("Figure 5: multiprogrammed performance and energy",
                "Figure 5 (Section 8.2), 8-core mixes, normalized to "
                "baseline");

    auto n_mixes = static_cast<unsigned>(3 * benchScale());
    runScenario("No RowHammer attack", makeBenignMixes(n_mixes, 42));
    runScenario("RowHammer attack present", makeAttackMixes(n_mixes, 42));

    std::printf("Paper shape: no-attack ~1.00 for all mechanisms; under\n"
                "attack only BlockHammer raises WS/HS well above 1.0 and\n"
                "cuts energy below 1.0.\n\n");
    return 0;
}
