/**
 * @file
 * fuzz: Blacksmith-style evasion fuzzer — adversarial search beyond the
 * hand-written attack catalog.
 *
 * For each mechanism (Baseline + the paper's seven-mechanism comparison
 * set) the experiment runs independent red-team search chains
 * ("islands", one per sweep cell) over the frequency-domain pattern
 * space (workloads/fuzz_patterns.hh) under the same security
 * configuration secsweep uses, and reports the worst disturbance margin
 * ever found per mechanism together with the serialized pattern that
 * achieved it. A pattern that beats the static catalog's worst case is
 * a promotion candidate: append its serialized form to
 * src/workloads/fuzz_regressions.cc and it becomes a permanent secsweep
 * regression cell (see DESIGN.md "Security verification").
 *
 * Every chain is deterministic from a name-derived seed, and each cell
 * is one self-contained chain — so the grid shards, resumes, and
 * reproduces byte-identically at any --jobs / --channel-threads / skip
 * mode like every other experiment.
 */

#include <map>

#include "analysis/red_team.hh"
#include "bench/experiments.hh"
#include "report/report.hh"

namespace bh
{

namespace
{

/** Independent search chains per mechanism (one sweep cell each). */
constexpr unsigned kIslands = 2;

/** Search chains evaluate at the single-channel security config. */
constexpr unsigned kFuzzChannels = 1;

/** Scale-adapted search budget (per chain). */
unsigned
fuzzPopulation(const BenchContext &ctx)
{
    return std::min(8u, ctx.scaled(6, 4));
}

unsigned
fuzzGenerations(const BenchContext &ctx)
{
    return std::min(6u, ctx.scaled(4, 2));
}

} // namespace

void
benchFuzz(BenchContext &ctx)
{
    // Factory-derived mechanism coverage (bench_util.hh): Baseline
    // first, then the paper set, then the zoo — appended last so the
    // pre-zoo island cell indices stay stable.
    const std::vector<std::string> &mechs = securityMechanisms();
    const unsigned population = fuzzPopulation(ctx);
    const unsigned generations = fuzzGenerations(ctx);

    // One runCells phase per mechanism, one cell per island: cells are
    // whole search chains, so the manifest names exactly what each
    // shard computes.
    std::map<std::string, std::vector<Json>> cells_by_mech;
    for (const auto &mech : mechs) {
        cells_by_mech[mech] = ctx.runCells(
            "mech:" + mech, kIslands, [&](std::size_t island) {
                RedTeamConfig rc;
                rc.base = securityConfig(ctx, mech, kFuzzChannels);
                rc.benignApps = securityBenignApps();
                rc.space = defaultFuzzSpace();
                rc.population = population;
                rc.generations = generations;
                rc.survivors = 2;
                // Name-derived chain seed: stable across shardings and
                // binary versions, decorrelated between islands.
                rc.seed = fnv1a64(strfmt("fuzz:%s:island%zu",
                                         mech.c_str(), island));
                RedTeamResult r = redTeamSearch(rc);

                Json cell = Json::object();
                cell["best_pattern"] = r.best.serialized;
                cell["best_margin"] = r.best.margin;
                cell["best_max_window_acts"] =
                    static_cast<std::int64_t>(r.best.maxWindowActs);
                cell["best_bit_flips"] =
                    static_cast<std::int64_t>(r.best.bitFlips);
                cell["best_blocked_acts"] =
                    static_cast<std::int64_t>(r.best.blockedActs);
                cell["best_generation"] =
                    static_cast<std::int64_t>(r.best.generation);
                cell["evaluations"] =
                    static_cast<std::int64_t>(r.evaluations);
                cell["memo_hits"] =
                    static_cast<std::int64_t>(r.memoHits);
                Json gens = Json::array();
                for (const auto &at : r.generationBest) {
                    Json g = Json::object();
                    g["pattern"] = at.serialized;
                    g["margin"] = at.margin;
                    gens.push(std::move(g));
                }
                cell["gen_best"] = std::move(gens);
                return cell;
            });
    }
    if (!ctx.aggregate())
        return;

    // --- report -------------------------------------------------------
    std::printf("--- worst disturbance margin found per mechanism "
                "(%u islands x %u gens x %u pop; '!' = >= 1, bound "
                "violated) ---\n",
                kIslands, generations, population);
    Json worst = Json::object();
    TextTable tt({"mechanism", "worst margin", "window ACTs", "bit flips",
                  "gen", "ACT bound"});
    for (const auto &mech : mechs) {
        const auto &cells = cells_by_mech[mech];
        std::size_t best = 0;
        for (std::size_t i = 1; i < cells.size(); ++i)
            if (cellNum(cells[i], "best_margin") >
                cellNum(cells[best], "best_margin"))
                best = i;
        const Json &cell = cells[best];
        double margin = cellNum(cell, "best_margin");
        tt.addRow({mech, TextTable::num(margin, 3) +
                             (margin >= 1.0 ? "!" : ""),
                   std::to_string(cellInt(cell, "best_max_window_acts")),
                   std::to_string(cellInt(cell, "best_bit_flips")),
                   std::to_string(cellInt(cell, "best_generation")),
                   margin < 1.0 ? "HELD" : "violated"});

        Json w = Json::object();
        w["margin"] = margin;
        w["pattern"] = cell.find("best_pattern")->asString();
        w["max_window_acts"] = cellInt(cell, "best_max_window_acts");
        w["bit_flips"] = cellInt(cell, "best_bit_flips");
        w["island"] = static_cast<std::int64_t>(best);
        worst[mech] = std::move(w);
    }
    std::printf("%s\n", tt.render().c_str());

    std::printf("--- strongest patterns (promotion candidates: add to "
                "src/workloads/fuzz_regressions.cc when they beat the "
                "static catalog's secsweep worst case) ---\n");
    for (const auto &mech : mechs) {
        const Json &w = worst[mech];
        std::printf("  %-12s margin %7.3f  %s\n", mech.c_str(),
                    cellNum(w, "margin"),
                    w.find("pattern")->asString().c_str());
    }
    std::printf("\n");

    bool bh_resisted = cellNum(worst["BlockHammer"], "margin") < 1.0;
    std::printf("BlockHammer under adversarial search: %s\n\n",
                bh_resisted ? "HELD (no searched pattern broke the "
                              "activation bound)"
                            : "VIOLATED");

    ctx.result["mechanisms"] = [&] {
        Json a = Json::array();
        for (const auto &m : mechs)
            a.push(m);
        return a;
    }();
    ctx.result["islands"] = static_cast<std::int64_t>(kIslands);
    ctx.result["population"] = static_cast<std::int64_t>(population);
    ctx.result["generations"] = static_cast<std::int64_t>(generations);
    ctx.result["channels"] = static_cast<std::int64_t>(kFuzzChannels);
    ctx.result["search_space"] = defaultFuzzSpace().describe();
    ctx.result["worst"] = std::move(worst);
    ctx.result["blockhammer_resisted"] = bh_resisted;
}

} // namespace bh
