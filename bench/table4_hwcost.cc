/**
 * @file
 * Reproduces Table 4: per-rank storage, area, access energy, and static
 * power of BlockHammer and the six state-of-the-art mechanisms, at
 * N_RH = 32K and N_RH = 1K. Analytical (calibrated cost model standing in
 * for CACTI/Synopsys DC; see DESIGN.md).
 */

#include "bench/experiments.hh"
#include "analysis/hwcost.hh"

namespace bh
{

namespace
{

Json
printForThreshold(const HwCostModel &model, std::uint32_t n_rh)
{
    std::printf("--- N_RH = %uK ---\n", n_rh / 1024);
    Json out = Json::object();
    TextTable t({"mechanism", "SRAM KiB", "CAM KiB", "area mm^2",
                 "% CPU", "access pJ", "static mW"});
    // Factory-derived row set (Table 4 leads with BlockHammer): a
    // mechanism added to the factory gets a cost row here or the model
    // fatal()s — it cannot be silently missing from the table.
    std::vector<std::string> mechs = {"BlockHammer"};
    for (const auto &m : paperMechanisms())
        if (m != "BlockHammer")
            mechs.push_back(m);
    for (const auto &m : zooMechanisms())
        mechs.push_back(m);
    for (const std::string &m : mechs) {
        auto cost = model.costFor(m, n_rh, DramTimings::ddr4());
        if (!cost) {
            // Known design-point gap (PRoHIT/MRLoc below their
            // published threshold); unknown names died in costFor.
            t.addRow({m, "x", "x", "x", "x", "x", "x"});
            out[m] = Json();    // null: no published scaling rule
            continue;
        }
        Json row = Json::object();
        row["sram_kib"] = cost->sramKiB;
        row["cam_kib"] = cost->camKiB;
        row["area_mm2"] = cost->areaMm2;
        row["cpu_area_pct"] = cost->cpuAreaPct;
        row["access_pj"] = cost->accessEnergyPj;
        row["static_mw"] = cost->staticPowerMw;
        out[m] = row;
        t.addRow({m,
                  TextTable::num(cost->sramKiB, 2),
                  TextTable::num(cost->camKiB, 2),
                  TextTable::num(cost->areaMm2, 3),
                  TextTable::num(cost->cpuAreaPct, 3),
                  TextTable::num(cost->accessEnergyPj, 2),
                  TextTable::num(cost->staticPowerMw, 2)});
    }
    std::printf("%s\n", t.render().c_str());
    return out;
}

} // namespace

void
benchTable4(BenchContext &ctx)
{
    // Analytic: no simulation cells, runs whole in every shard.
    if (!ctx.aggregate())
        return;
    // The whole-CPU area percentage merges the per-channel instances:
    // the paper's 4-channel Xeon reference by default, the simulated
    // channel count when the run overrides it.
    HwCostModel model(TechParams{}, 16, 8,
                      ctx.channels > 1 ? ctx.channels : 4);
    if (ctx.channels > 1)
        std::printf("(CPU area %% merged over %u channel instances)\n\n",
                    ctx.channels);
    ctx.result["nrh_32k"] = printForThreshold(model, 32768);
    ctx.result["nrh_1k"] = printForThreshold(model, 1024);

    std::printf("BlockHammer component breakdown (per rank):\n");
    TextTable t({"component", "N_RH=32K SRAM KiB", "N_RH=32K CAM KiB",
                 "N_RH=1K SRAM KiB", "N_RH=1K CAM KiB"});
    Json breakdown = Json::object();
    auto row = [&](const char *name, Storage a, Storage b) {
        Json c = Json::object();
        c["nrh_32k_sram_kib"] = a.sramBits / 8192.0;
        c["nrh_32k_cam_kib"] = a.camBits / 8192.0;
        c["nrh_1k_sram_kib"] = b.sramBits / 8192.0;
        c["nrh_1k_cam_kib"] = b.camBits / 8192.0;
        breakdown[name] = c;
        t.addRow({name,
                  TextTable::num(a.sramBits / 8192.0, 2),
                  TextTable::num(a.camBits / 8192.0, 2),
                  TextTable::num(b.sramBits / 8192.0, 2),
                  TextTable::num(b.camBits / 8192.0, 2)});
    };
    auto timings = DramTimings::ddr4();
    row("dual counting Bloom filters", model.blockHammerDcbf(32768),
        model.blockHammerDcbf(1024));
    row("row activation history buffer",
        model.blockHammerHistory(32768, timings),
        model.blockHammerHistory(1024, timings));
    row("AttackThrottler counters", model.blockHammerThrottler(32768),
        model.blockHammerThrottler(1024));
    std::printf("%s\n", t.render().c_str());
    ctx.result["blockhammer_breakdown"] = breakdown;

    std::printf("Paper shape check: at N_RH=1K, TWiCe and CBT area grow to\n"
                "multiples of BlockHammer's; Graphene becomes comparable.\n\n");
}

} // namespace bh
