/**
 * @file
 * secsweep: end-to-end security verification of every mitigation
 * against the adversarial attack-pattern catalog.
 *
 * Reproduces the paper's central security claim (Sections 5 and 8.2) as
 * *data* instead of assertion: for each (attack pattern x mechanism x
 * channel count) cell the run attaches the SecurityOracle and reports
 * the disturbance margin — the maximum per-row activation count inside
 * any sliding tREFW window, divided by N_RH — plus the first-violation
 * cycle and the ground-truth bit-flip count.
 *
 * Expected shape: BlockHammer (the only throttling mechanism) holds
 * margin < 1 for every pattern, including the evaders tuned to sit
 * under its blacklist threshold; probabilistic/victim-refresh baselines
 * (PARA, PRoHIT, MRLoc) run at margin >= 1 for the aggressive patterns
 * because they never bound aggressor activations — their defense (and
 * its failure modes) shows up in the bit-flip column instead.
 */

#include <map>

#include "bench/experiments.hh"

namespace bh
{

namespace
{

/** Patterns this context sweeps (bh_bench --attack filters by name). */
std::vector<const AttackPatternSpec *>
selectedPatterns(const BenchContext &ctx)
{
    std::vector<const AttackPatternSpec *> out;
    for (const auto &spec : attackPatternCatalog())
        if (ctx.attackFilter.empty() ||
            spec.name.find(ctx.attackFilter) != std::string::npos)
            out.push_back(&spec);
    // A filter that matches nothing must not produce an empty sweep:
    // that would report a vacuous "BlockHammer HELD" verdict (margin 0
    // over zero cells) with exit 0 — a typo'd --attack silently
    // passing a security gate.
    if (out.empty())
        fatal("--attack '%s' matches no catalog pattern (see "
              "bh_bench --list)", ctx.attackFilter.c_str());
    return out;
}

} // namespace

void
benchSecSweep(BenchContext &ctx)
{
    const auto patterns = selectedPatterns(ctx);
    // Baseline first as the unmitigated reference, then every compared
    // mechanism — factory-derived (bench_util.hh), so a newly
    // registered mechanism can never be skipped by this sweep.
    const std::vector<std::string> &mechs = securityMechanisms();
    const std::vector<unsigned> channel_counts = {1, 2};
    const std::size_t runs_per_pattern =
        mechs.size() * channel_counts.size();

    // One runCells phase per pattern: the manifest (and bh_bench
    // --list) name every pattern the grid covers.
    std::map<std::string, std::vector<Json>> cells_by_pattern;
    for (const AttackPatternSpec *spec : patterns) {
        cells_by_pattern[spec->name] = ctx.runCells(
            "pattern:" + spec->name, runs_per_pattern,
            [&](std::size_t i) {
                const std::string &mech = mechs[i / channel_counts.size()];
                unsigned channels =
                    channel_counts[i % channel_counts.size()];
                ExperimentConfig cfg = securityConfig(ctx, mech, channels);
                RunResult res = runExperiment(
                    cfg, securityMix(attackPatternApp(spec->name),
                                     "sec-" + spec->name));

                Json cell = Json::object();
                cell["margin"] = res.secMargin;
                cell["max_window_acts"] =
                    static_cast<std::int64_t>(res.secMaxWindowActs);
                cell["first_violation_cycle"] =
                    res.secFirstViolation == kNoEventCycle
                        ? static_cast<std::int64_t>(-1)
                        : static_cast<std::int64_t>(res.secFirstViolation);
                cell["violating_rows"] =
                    static_cast<std::int64_t>(res.secViolatingRows);
                cell["bit_flips"] =
                    static_cast<std::int64_t>(res.bitFlips);
                cell["blocked_acts"] =
                    static_cast<std::int64_t>(res.blockedActs);
                cell["victim_refreshes"] =
                    static_cast<std::int64_t>(res.victimRefreshes);
                cell["demand_acts"] =
                    static_cast<std::int64_t>(res.demandActs);
                cell["attack_ipc"] = res.ipc[0];
                cell["benign_ipc_mean"] = mean(res.benignIpc());
                cell["stats"] = res.stats;
                return cell;
            });
    }
    if (!ctx.aggregate())
        return;

    // --- report -------------------------------------------------------
    Json grid = Json::object();
    Json worst = Json::object();
    std::map<std::string, double> worst_margin;
    std::map<std::string, std::int64_t> total_flips;

    std::printf("--- disturbance margin (max window ACTs / N_RH; "
                "'!' = >= 1, bound violated) ---\n");
    for (unsigned ci = 0; ci < channel_counts.size(); ++ci) {
        std::vector<std::string> header = {"pattern"};
        for (const auto &m : mechs)
            header.push_back(m);
        TextTable tt(header);
        for (const AttackPatternSpec *spec : patterns) {
            const auto &cells = cells_by_pattern[spec->name];
            std::vector<std::string> row = {spec->name};
            Json &pat_json = grid[spec->name];
            if (pat_json.isNull())
                pat_json = Json::object();
            for (std::size_t mi = 0; mi < mechs.size(); ++mi) {
                const Json &cell =
                    cells[mi * channel_counts.size() + ci];
                double margin = cellNum(cell, "margin");
                row.push_back(TextTable::num(margin, 3) +
                              (margin >= 1.0 ? "!" : ""));
                auto &wm = worst_margin[mechs[mi]];
                wm = std::max(wm, margin);
                total_flips[mechs[mi]] += cellInt(cell, "bit_flips");
                Json &mech_json = pat_json[mechs[mi]];
                if (mech_json.isNull())
                    mech_json = Json::object();
                mech_json[strfmt("ch%u", channel_counts[ci])] = cell;
            }
            tt.addRow(row);
        }
        std::printf("%u channel(s):\n%s\n", channel_counts[ci],
                    tt.render().c_str());
    }

    std::printf("--- worst margin / total bit-flips per mechanism ---\n");
    TextTable ts({"mechanism", "worst margin", "bit flips", "ACT bound"});
    for (const auto &mech : mechs) {
        double wm = worst_margin[mech];
        Json w = Json::object();
        w["margin"] = wm;
        w["bit_flips"] = total_flips[mech];
        worst[mech] = w;
        ts.addRow({mech, TextTable::num(wm, 3),
                   std::to_string(total_flips[mech]),
                   wm < 1.0 ? "HELD" : "violated"});
    }
    std::printf("%s\n", ts.render().c_str());

    bool bh_safe = worst_margin["BlockHammer"] < 1.0;
    std::printf("BlockHammer bound (< N_RH ACTs per row per tREFW window "
                "under every pattern): %s\n",
                bh_safe ? "HELD" : "VIOLATED");
    std::printf("Paper claim: BlockHammer is the only mechanism that "
                "*bounds* aggressor activations; refresh-based baselines "
                "run at margin >= 1 by design.\n\n");

    ctx.result["mechanisms"] = [&] {
        Json a = Json::array();
        for (const auto &m : mechs)
            a.push(m);
        return a;
    }();
    ctx.result["patterns"] = [&] {
        Json a = Json::array();
        for (const AttackPatternSpec *spec : patterns)
            a.push(spec->name);
        return a;
    }();
    ctx.result["grid"] = std::move(grid);
    ctx.result["worst"] = std::move(worst);
    ctx.result["blockhammer_safe"] = bh_safe;
}

} // namespace bh
