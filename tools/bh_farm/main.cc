/**
 * @file
 * bh_farm: fault-tolerant sweep coordinator for bh_bench grids.
 *
 *   bh_farm init DIR --experiment NAME [grid/policy options]
 *   bh_farm work DIR [--worker NAME] [--faults SPEC]
 *   bh_farm run  DIR --workers N [--faults SPEC]
 *   bh_farm status DIR
 *   bh_farm merge DIR [-o FILE]
 *
 * `init` stamps DIR with the experiment's grid (same fingerprint the
 * shard/merge layer uses) and the retry/lease policy. `work` is one
 * worker process: it leases cells, runs them through the bench
 * registry, and commits results until the grid completes. `run` is the
 * convenience coordinator: it forks N `work` processes against DIR,
 * respawns ones that die (SIGKILL included), and reports. `merge`
 * collects the committed payloads and replays the experiment's
 * aggregation — the output is byte-identical to an unsharded
 * `bh_bench` run no matter how many crashes, retries, or duplicate
 * executions the farm absorbed.
 *
 * Fault injection: --faults (or the BH_FARM_FAULTS environment
 * variable) arms a deterministic FaultPlan — see src/farm/fault.hh for
 * the spec grammar (kill@3,truncate@5,... or random:SEED:COUNT).
 */

#include <csignal>
#include <cstring>
#include <set>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench/registry.hh"
#include "common/fsio.hh"
#include "farm/farm.hh"
#include "farm/journal.hh"
#include "report/report.hh"

namespace
{

void
usage(std::FILE *out)
{
    std::fprintf(out,
        "usage: bh_farm init DIR --experiment NAME [options]\n"
        "       bh_farm work DIR [options]\n"
        "       bh_farm run DIR --workers N [options]\n"
        "       bh_farm status DIR\n"
        "       bh_farm merge DIR [-o FILE]\n"
        "\n"
        "init: create a farm directory for one experiment grid.\n"
        "  --experiment NAME   registered experiment (see bh_bench --list)\n"
        "  --scale X           fidelity multiplier >= 0.1 (default 1)\n"
        "  --channels N        DRAM channels (power of two, default 1)\n"
        "  --channel-threads N lane threads per cell (default 1)\n"
        "  --attack NAME       attack-catalog filter (secsweep)\n"
        "  --max-attempts K    failures before a cell is poisoned "
        "(default 3)\n"
        "  --cell-budget S     per-cell wall-clock watchdog seconds\n"
        "                      (default 600; 0 disables)\n"
        "  --stale-after S     heartbeat age that marks a lease stale\n"
        "                      (default 60)\n"
        "  --backoff-base S    retry backoff base (default 0.5)\n"
        "  --backoff-cap S     retry backoff ceiling (default 30)\n"
        "  --verify-every N    re-execute 1-in-N cells and require digest\n"
        "                      agreement (0 = off, 1 = every cell)\n"
        "\n"
        "work: one worker process; leases and runs cells until the grid\n"
        "completes (exit 0), only poisoned cells remain (exit 4), or a\n"
        "fault/watchdog kills it (exit 3).\n"
        "  --worker NAME       worker id (default: host pid)\n"
        "  --jobs N            threads for in-cell parallelism (default 0\n"
        "                      = all cores)\n"
        "  --faults SPEC       arm a deterministic fault plan (also read\n"
        "                      from BH_FARM_FAULTS)\n"
        "\n"
        "run: fork N workers against DIR, respawn dead ones (bounded),\n"
        "and wait for the farm to finish.\n"
        "  --workers N         worker processes (default 2)\n"
        "  --jobs N, --faults SPEC   forwarded to every worker\n"
        "\n"
        "merge: replay aggregation over the committed cells.\n"
        "  -o, --out FILE      output (default BENCH_<experiment>.json)\n");
}

double
parseSeconds(const char *what, const char *text)
{
    char *end = nullptr;
    double v = std::strtod(text, &end);
    if (!end || *end != '\0' || v < 0.0)
        bh::fatal("%s wants a non-negative number, got '%s'", what, text);
    return v;
}

std::string
faultSpecFromEnv(const std::string &cli_spec)
{
    if (!cli_spec.empty())
        return cli_spec;
    const char *env = std::getenv("BH_FARM_FAULTS");
    return env ? env : "";
}

/** Enumerate `info`'s grid for the spec'd scale/channels/filter. */
void
probeGrid(const bh::BenchInfo &info, const bh::FarmSpec &spec,
          bh::Runner &runner, bh::BenchContext &probe)
{
    probe.scale = spec.scale;
    probe.channels = spec.channels;
    probe.attackFilter = spec.attackFilter;
    probe.runner = &runner;
    probe.mode = bh::BenchContext::CellMode::Enumerate;
    runBench(info, probe);
}

int
cmdInit(const std::string &dir, const std::vector<std::string> &args)
{
    using namespace bh;

    FarmSpec spec;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&]() -> const char * {
            if (++i >= args.size())
                fatal("option %s needs a value", arg.c_str());
            return args[i].c_str();
        };
        if (arg == "--experiment") {
            spec.experiment = value();
        } else if (arg == "--scale") {
            spec.scale = parseSeconds("--scale", value());
            if (spec.scale < 0.1)
                fatal("--scale must be >= 0.1");
        } else if (arg == "--channels") {
            spec.channels = static_cast<unsigned>(std::atoi(value()));
            if (spec.channels < 1 || spec.channels > 64 ||
                !isPow2(spec.channels))
                fatal("--channels must be a power of two in [1, 64]");
        } else if (arg == "--channel-threads") {
            spec.channelThreads = static_cast<unsigned>(std::atoi(value()));
            if (spec.channelThreads < 1 || spec.channelThreads > 64)
                fatal("--channel-threads must be in [1, 64]");
        } else if (arg == "--attack") {
            spec.attackFilter = value();
        } else if (arg == "--max-attempts") {
            int k = std::atoi(value());
            if (k < 1 || k > 100)
                fatal("--max-attempts must be in [1, 100]");
            spec.policy.maxAttempts = static_cast<unsigned>(k);
        } else if (arg == "--cell-budget") {
            spec.policy.cellBudgetS = parseSeconds("--cell-budget", value());
        } else if (arg == "--stale-after") {
            spec.policy.staleAfterS = parseSeconds("--stale-after", value());
        } else if (arg == "--backoff-base") {
            spec.policy.backoffBaseS =
                parseSeconds("--backoff-base", value());
        } else if (arg == "--backoff-cap") {
            spec.policy.backoffCapS = parseSeconds("--backoff-cap", value());
        } else if (arg == "--verify-every") {
            int n = std::atoi(value());
            if (n < 0)
                fatal("--verify-every must be >= 0");
            spec.policy.verifyEvery = static_cast<unsigned>(n);
        } else {
            fatal("bh_farm init: unknown option %s", arg.c_str());
        }
    }
    if (spec.experiment.empty())
        fatal("bh_farm init: --experiment is required");
    const BenchInfo *info = findBench(spec.experiment);
    if (!info)
        fatal("unknown experiment '%s' (see bh_bench --list)",
              spec.experiment.c_str());

    Runner runner(1);
    BenchContext probe;
    probeGrid(*info, spec, runner, probe);
    if (probe.nextCell == 0)
        fatal("%s is analytic (no sweep cells); run it with bh_bench "
              "directly — a farm has nothing to distribute",
              spec.experiment.c_str());
    spec.cellTotal = probe.nextCell;
    spec.fingerprint = benchGridFingerprint(*info, probe);

    SystemFarmClock clock;
    std::string err;
    if (!Farm::init(dir, spec, clock, err))
        fatal("bh_farm init: %s", err.c_str());
    std::printf("bh_farm: %s: %s grid, %llu cells, fingerprint %s\n",
                dir.c_str(), spec.experiment.c_str(),
                static_cast<unsigned long long>(spec.cellTotal),
                spec.fingerprint.c_str());
    return 0;
}

int
cmdWork(const std::string &dir, const std::vector<std::string> &args)
{
    using namespace bh;

    std::string worker;
    std::string fault_spec;
    unsigned jobs = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&]() -> const char * {
            if (++i >= args.size())
                fatal("option %s needs a value", arg.c_str());
            return args[i].c_str();
        };
        if (arg == "--worker")
            worker = value();
        else if (arg == "--faults")
            fault_spec = value();
        else if (arg == "--jobs")
            jobs = static_cast<unsigned>(std::atoi(value()));
        else
            fatal("bh_farm work: unknown option %s", arg.c_str());
    }
    if (worker.empty())
        worker = strfmt("pid%d", static_cast<int>(::getpid()));

    SystemFarmClock clock;
    Farm farm;
    std::string err;
    if (!Farm::open(dir, clock, farm, err))
        fatal("bh_farm work: %s", err.c_str());
    const FarmSpec &spec = farm.spec();

    FaultPlan faults;
    std::string spec_text = faultSpecFromEnv(fault_spec);
    if (!FaultPlan::parse(spec_text, spec.cellTotal, faults, err))
        fatal("bh_farm work: --faults: %s", err.c_str());

    const BenchInfo *info = findBench(spec.experiment);
    if (!info)
        fatal("farm experiment '%s' is not in this binary's registry",
              spec.experiment.c_str());
    // Guard against binary drift: the registry of this build must still
    // produce the grid the farm was initialized for.
    Runner runner(jobs);
    {
        BenchContext probe;
        probeGrid(*info, spec, runner, probe);
        std::string fp = benchGridFingerprint(*info, probe);
        if (fp != spec.fingerprint || probe.nextCell != spec.cellTotal)
            fatal("grid fingerprint %s (%llu cells) does not match the "
                  "farm's %s (%llu cells); the binary diverged from the "
                  "one that ran init",
                  fp.c_str(),
                  static_cast<unsigned long long>(probe.nextCell),
                  spec.fingerprint.c_str(),
                  static_cast<unsigned long long>(spec.cellTotal));
    }

    // One leased cell per execution: shard 0/1 with every *other* cell
    // marked resume-covered runs exactly the target cell through the
    // standard runCells path, so payload bytes match bh_bench exactly.
    auto runCell = [&](std::uint64_t cell) -> Json {
        std::set<std::uint64_t> covered;
        for (std::uint64_t c = 0; c < spec.cellTotal; ++c)
            if (c != cell)
                covered.insert(c);
        BenchContext ctx;
        ctx.scale = spec.scale;
        ctx.channels = spec.channels;
        ctx.channelThreads = spec.channelThreads;
        ctx.attackFilter = spec.attackFilter;
        ctx.runner = &runner;
        ctx.resumeCovered = &covered;
        runBench(*info, ctx);
        const Json *cells = ctx.result.find("cells");
        const Json *payload =
            cells ? cells->find(std::to_string(cell)) : nullptr;
        if (!payload || payload->isNull())
            throw std::runtime_error(strfmt(
                "experiment produced no payload for cell %llu",
                static_cast<unsigned long long>(cell)));
        return *payload;
    };

    farm.heartbeat(worker);
    std::printf("bh_farm: worker %s on %s (%s, %llu cells)\n",
                worker.c_str(), dir.c_str(), spec.experiment.c_str(),
                static_cast<unsigned long long>(spec.cellTotal));
    for (;;) {
        Farm::Claim claim;
        double hint = 1.0;
        Farm::Pick pick = farm.pickWork(worker, faults, claim, &hint);
        if (pick == Farm::Pick::kComplete) {
            std::printf("bh_farm: worker %s: grid complete\n",
                        worker.c_str());
            return 0;
        }
        if (pick == Farm::Pick::kStuck) {
            std::fprintf(stderr,
                         "bh_farm: worker %s: only poisoned cells remain; "
                         "see %s\n", worker.c_str(),
                         farm.paths().poisonDir().c_str());
            return 4;
        }
        if (pick == Farm::Pick::kWait) {
            farm.heartbeat(worker);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(std::min(hint, 5.0)));
            continue;
        }

        std::string detail;
        Farm::RunOutcome outcome =
            farm.runClaim(worker, claim, runCell, faults, detail);
        switch (outcome) {
          case Farm::RunOutcome::kCommitted:
          case Farm::RunOutcome::kDupAgree:
          case Farm::RunOutcome::kVerifyOk:
          case Farm::RunOutcome::kVerifyMoot:
            break;
          case Farm::RunOutcome::kDupMismatch:
          case Farm::RunOutcome::kVerifyMismatch:
          case Farm::RunOutcome::kFailed:
            std::fprintf(stderr, "bh_farm: worker %s: cell %llu: %s\n",
                         worker.c_str(),
                         static_cast<unsigned long long>(claim.cell),
                         detail.c_str());
            break;
          case Farm::RunOutcome::kWatchdog:
            // The runner thread is wedged past its budget; the failure
            // is recorded on disk, so die hard and let a respawned
            // worker (or a peer) carry on.
            std::fprintf(stderr, "bh_farm: worker %s: cell %llu: %s; "
                         "exiting\n", worker.c_str(),
                         static_cast<unsigned long long>(claim.cell),
                         detail.c_str());
            std::_Exit(3);
          case Farm::RunOutcome::kKilled:
            // Injected SIGKILL-equivalent: no cleanup of any kind.
            std::_Exit(3);
        }
    }
}

int
cmdRun(const std::string &dir, const std::vector<std::string> &args,
       const char *self)
{
    using namespace bh;

    unsigned workers = 2;
    unsigned jobs = 0;
    std::string fault_spec;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&]() -> const char * {
            if (++i >= args.size())
                fatal("option %s needs a value", arg.c_str());
            return args[i].c_str();
        };
        if (arg == "--workers") {
            int n = std::atoi(value());
            if (n < 1 || n > 256)
                fatal("--workers must be in [1, 256]");
            workers = static_cast<unsigned>(n);
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::atoi(value()));
        } else if (arg == "--faults") {
            fault_spec = value();
        } else {
            fatal("bh_farm run: unknown option %s", arg.c_str());
        }
    }

    SystemFarmClock clock;
    Farm farm;
    std::string err;
    if (!Farm::open(dir, clock, farm, err))
        fatal("bh_farm run: %s", err.c_str());
    fault_spec = faultSpecFromEnv(fault_spec);

    // Spawn-and-reap loop: a worker that dies (injected kill fault,
    // real SIGKILL, watchdog exit) is respawned with a fresh id until
    // the farm completes, sticks, or the respawn budget runs out —
    // a crash-looping fleet must terminate, not spin.
    const unsigned max_spawns = workers * (farm.spec().policy.maxAttempts
                                           + 2) + 8;
    unsigned spawned = 0;
    unsigned round = 0;
    for (;;) {
        FarmStatus st = farm.status("coordinator");
        if (st.complete)
            break;
        if (!st.poisoned.empty() &&
            st.doneCells + st.poisoned.size() >= st.cellTotal)
            break;  // only poisoned cells remain
        if (spawned >= max_spawns) {
            std::fprintf(stderr, "bh_farm: respawn budget (%u) exhausted "
                         "with %llu/%llu cells done\n", max_spawns,
                         static_cast<unsigned long long>(st.doneCells),
                         static_cast<unsigned long long>(st.cellTotal));
            return 5;
        }

        std::vector<pid_t> pids;
        for (unsigned w = 0; w < workers && spawned < max_spawns; ++w) {
            std::string worker_id = strfmt("w%u-r%u", w, round);
            std::string jobs_str = std::to_string(jobs);
            pid_t pid = ::fork();
            if (pid < 0)
                fatal("fork: %s", std::strerror(errno));
            if (pid == 0) {
                std::vector<const char *> argv = {
                    self, "work", dir.c_str(), "--worker",
                    worker_id.c_str(), "--jobs", jobs_str.c_str()};
                if (!fault_spec.empty()) {
                    argv.push_back("--faults");
                    argv.push_back(fault_spec.c_str());
                }
                argv.push_back(nullptr);
                ::execv("/proc/self/exe",
                        const_cast<char *const *>(argv.data()));
                std::fprintf(stderr, "bh_farm: execv: %s\n",
                             std::strerror(errno));
                std::_Exit(127);
            }
            pids.push_back(pid);
            ++spawned;
        }

        for (pid_t pid : pids) {
            int status = 0;
            if (::waitpid(pid, &status, 0) < 0)
                continue;
            if (WIFSIGNALED(status))
                std::printf("bh_farm: worker pid %d killed by signal %d; "
                            "its leases will be stolen\n",
                            static_cast<int>(pid), WTERMSIG(status));
            else if (WIFEXITED(status) && WEXITSTATUS(status) != 0)
                std::printf("bh_farm: worker pid %d exited %d\n",
                            static_cast<int>(pid), WEXITSTATUS(status));
        }
        ++round;
    }

    FarmStatus st = farm.status("coordinator");
    std::printf("bh_farm: %llu/%llu cells done, %llu poisoned, "
                "%u worker process(es) spawned\n",
                static_cast<unsigned long long>(st.doneCells),
                static_cast<unsigned long long>(st.cellTotal),
                static_cast<unsigned long long>(st.poisoned.size()),
                spawned);
    return st.complete ? 0 : 4;
}

int
cmdStatus(const std::string &dir)
{
    using namespace bh;

    SystemFarmClock clock;
    Farm farm;
    std::string err;
    if (!Farm::open(dir, clock, farm, err))
        fatal("bh_farm status: %s", err.c_str());
    const FarmSpec &spec = farm.spec();
    FarmStatus st = farm.status();

    std::printf("farm %s: %s, scale %s, %u channel(s), fingerprint %s\n",
                dir.c_str(), spec.experiment.c_str(),
                Json::formatDouble(spec.scale).c_str(), spec.channels,
                spec.fingerprint.c_str());
    std::printf("  cells: %llu/%llu done",
                static_cast<unsigned long long>(st.doneCells),
                static_cast<unsigned long long>(st.cellTotal));
    if (spec.policy.verifyEvery > 0)
        std::printf(", %llu/%llu verified",
                    static_cast<unsigned long long>(st.verifiedCells),
                    static_cast<unsigned long long>(st.verifyWanted));
    std::printf("\n  leases: %llu active, %llu stale; %llu in backoff, "
                "%llu pending\n",
                static_cast<unsigned long long>(st.activeLeases),
                static_cast<unsigned long long>(st.staleLeases),
                static_cast<unsigned long long>(st.backoffCells),
                static_cast<unsigned long long>(st.pendingCells));
    if (!st.poisoned.empty()) {
        std::string list;
        for (std::uint64_t cell : st.poisoned)
            list += (list.empty() ? "" : " ") + std::to_string(cell);
        std::printf("  POISONED cells (gave up after %u attempts): %s\n",
                    spec.policy.maxAttempts, list.c_str());
    }
    if (st.journalCorruptEvents > 0)
        std::printf("  corrupt results quarantined over the farm's life: "
                    "%llu\n",
                    static_cast<unsigned long long>(
                        st.journalCorruptEvents));
    std::printf("  %s\n", st.complete ? "complete"
                          : st.poisoned.empty() ? "INCOMPLETE"
                                                : "STUCK (poisoned cells)");
    return st.complete ? 0 : st.poisoned.empty() ? 1 : 4;
}

int
cmdMerge(const std::string &dir, const std::vector<std::string> &args)
{
    using namespace bh;

    std::string out_path;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "-o" || arg == "--out") {
            if (++i >= args.size())
                fatal("option %s needs a value", arg.c_str());
            out_path = args[i];
        } else {
            fatal("bh_farm merge: unknown option %s", arg.c_str());
        }
    }

    SystemFarmClock clock;
    Farm farm;
    std::string err;
    if (!Farm::open(dir, clock, farm, err))
        fatal("bh_farm merge: %s", err.c_str());
    const FarmSpec &spec = farm.spec();

    Json cells;
    if (!farm.collectCells(cells, err))
        fatal("bh_farm merge: %s", err.c_str());

    const BenchInfo *info = findBench(spec.experiment);
    if (!info)
        fatal("farm experiment '%s' is not in this binary's registry",
              spec.experiment.c_str());
    Runner runner(1);
    BenchContext probe;
    probeGrid(*info, spec, runner, probe);
    std::string fp = benchGridFingerprint(*info, probe);
    if (fp != spec.fingerprint)
        fatal("grid fingerprint %s does not match the farm's %s; the "
              "binary diverged from the one that ran init", fp.c_str(),
              spec.fingerprint.c_str());

    // Wrap the collected payloads as a synthetic single partial report
    // (an unsharded partial covering every cell) and push it through the
    // exact validate-merge-replay path bh_collect uses: manifest digest
    // checks, coverage check, then aggregation replay. Byte-identical to
    // an unsharded bh_bench run by the same contract shard merges have.
    Json synthetic = std::move(probe.result);
    Json &manifest = synthetic["manifest"];
    manifest["partial"] = true;
    manifest["cells_run"] = spec.cellTotal;
    Json digests = Json::object();
    for (const auto &kv : cells.objectItems())
        digests[kv.first] = cellDigest(kv.second);
    manifest["cell_digests"] = std::move(digests);
    synthetic["cells"] = std::move(cells);

    std::vector<LoadedReport> inputs(1);
    if (!loadReportText(synthetic.dump(), dir + " (collected cells)",
                        inputs[0], err))
        fatal("bh_farm merge: %s", err.c_str());
    MergeResult merge;
    if (!mergeReports(inputs, merge, err))
        fatal("bh_farm merge: %s", err.c_str());

    BenchContext ctx;
    ctx.scale = spec.scale;
    ctx.channels = spec.channels;
    ctx.attackFilter = spec.attackFilter;
    ctx.runner = &runner;
    ctx.mode = BenchContext::CellMode::Replay;
    ctx.replayCells = &merge.cells;
    runBench(*info, ctx);

    if (out_path.empty())
        out_path = "BENCH_" + spec.experiment + ".json";
    atomicWriteFileOrDie(out_path, ctx.result.dump(2) + "\n");
    std::printf("bh_farm: merged %llu cell(s) -> %s\n",
                static_cast<unsigned long long>(spec.cellTotal),
                out_path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bh::setVerbose(false);
    if (argc < 2) {
        usage(stderr);
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h") {
        usage(stdout);
        return 0;
    }
    if (argc < 3) {
        std::fprintf(stderr, "bh_farm %s: farm directory required\n",
                     cmd.c_str());
        usage(stderr);
        return 2;
    }
    std::string dir = argv[2];
    std::vector<std::string> args(argv + 3, argv + argc);
    if (cmd == "init")
        return cmdInit(dir, args);
    if (cmd == "work")
        return cmdWork(dir, args);
    if (cmd == "run")
        return cmdRun(dir, args, argv[0]);
    if (cmd == "status")
        return cmdStatus(dir);
    if (cmd == "merge")
        return cmdMerge(dir, args);
    std::fprintf(stderr, "bh_farm: unknown command '%s'\n", cmd.c_str());
    usage(stderr);
    return 2;
}
