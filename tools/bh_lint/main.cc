/**
 * @file
 * bh_lint CLI: the repo's in-tree determinism & observation-only
 * invariant analyzer (see src/lint/lint.hh for the rule catalog).
 *
 *   bh_lint [--root DIR] [--baseline FILE] [--fix-baseline]
 *           [--show-baselined] [--list-rules] [paths...]
 *
 * Default paths are src, bench, tests (relative to --root). Exit code
 * is 0 when no unsuppressed, unbaselined finding remains, 1 otherwise,
 * 2 on usage/IO errors. Registered as the `bh_lint_clean` ctest and a
 * CI step, so a PR that introduces a banned pattern fails to merge.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hh"

namespace
{

void
usage()
{
    std::cout <<
        "usage: bh_lint [options] [paths...]\n"
        "\n"
        "Static analysis of the repo's determinism and observation-only\n"
        "invariants. Paths are files or directories relative to --root\n"
        "(default: src bench tests).\n"
        "\n"
        "options:\n"
        "  --root DIR        repo root to scan (default: .)\n"
        "  --baseline FILE   baseline file (default: ROOT/.bh_lint_baseline\n"
        "                    when it exists)\n"
        "  --fix-baseline    rewrite the baseline to the current findings\n"
        "                    and exit 0\n"
        "  --show-baselined  also print findings absorbed by the baseline\n"
        "  --list-rules      print the rule catalog and exit\n";
}

} // namespace

int
main(int argc, char **argv)
{
    namespace fs = std::filesystem;
    using namespace bh::lint;

    std::string root = ".";
    std::string baselinePath;
    bool fixBaseline = false;
    bool showBaselined = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list-rules") {
            for (const auto &id : ruleIds())
                std::printf("%-16s %s\n", id.c_str(),
                            ruleDescription(id).c_str());
            return 0;
        } else if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baselinePath = argv[++i];
        } else if (arg == "--fix-baseline") {
            fixBaseline = true;
        } else if (arg == "--show-baselined") {
            showBaselined = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "bh_lint: unknown option '" << arg << "'\n";
            usage();
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "bench", "tests"};
    if (baselinePath.empty()) {
        fs::path def = fs::path(root) / ".bh_lint_baseline";
        std::error_code ec;
        if (fixBaseline || fs::exists(def, ec))
            baselinePath = def.string();
    }

    // Expand directories; pass explicit files through.
    std::vector<std::string> files;
    std::vector<std::string> dirs;
    for (const auto &p : paths) {
        std::error_code ec;
        if (fs::is_directory(fs::path(root) / p, ec))
            dirs.push_back(p);
        else
            files.push_back(p);
    }
    auto collected = collectSources(root, dirs);
    files.insert(files.end(), collected.begin(), collected.end());
    if (files.empty()) {
        std::cerr << "bh_lint: nothing to scan under '" << root << "'\n";
        return 2;
    }

    std::vector<std::string> ioErrors;
    auto findings = runLint(root, files, &ioErrors);
    for (const auto &e : ioErrors)
        std::cerr << "bh_lint: " << e << "\n";
    if (!ioErrors.empty())
        return 2;

    if (fixBaseline) {
        std::ofstream out(baselinePath, std::ios::binary);
        if (!out) {
            std::cerr << "bh_lint: cannot write " << baselinePath << "\n";
            return 2;
        }
        out << formatBaseline(findings);
        std::cout << "bh_lint: baseline of " << findings.size()
                  << " finding(s) written to " << baselinePath << "\n";
        return 0;
    }

    std::vector<BaselineEntry> baseline;
    if (!baselinePath.empty()) {
        std::ifstream in(baselinePath, std::ios::binary);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            std::string err;
            if (!parseBaseline(ss.str(), baseline, err)) {
                std::cerr << "bh_lint: " << baselinePath << ": " << err
                          << "\n";
                return 2;
            }
        }
    }

    std::vector<Finding> baselined;
    auto fresh = filterBaseline(findings, baseline, &baselined);

    if (showBaselined) {
        for (const auto &f : baselined)
            std::printf("%s:%d: [%s] (baselined) %s\n", f.path.c_str(),
                        f.line, f.rule.c_str(), f.message.c_str());
    }
    for (const auto &f : fresh)
        std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());

    std::printf("bh_lint: %zu file(s), %zu finding(s)", files.size(),
                fresh.size());
    if (!baselined.empty())
        std::printf(" (+%zu baselined)", baselined.size());
    std::printf("\n");
    if (!fresh.empty()) {
        std::printf("fix the findings, annotate with "
                    "'// bh-lint: allow(<rule>) <reason>', or run "
                    "bh_lint --fix-baseline\n");
        return 1;
    }
    return 0;
}
